package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

func TestParsePolicy(t *testing.T) {
	for spec, want := range map[string]string{
		"": "rr", "rr": "rr", "Round-Robin": "rr", "roundrobin": "rr",
		"least": "least", "least-loaded": "least",
		"slack": "slack", "slack-aware": "slack",
		"weighted": "weighted", "health": "weighted", "health-weighted": "weighted",
	} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		if p.Name() != want {
			t.Fatalf("ParsePolicy(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("ParsePolicy(bogus) error = %v, want the spec named", err)
	}
}

func TestPolicyPicks(t *testing.T) {
	views := []InstanceView{
		{Index: 0, Queued: 3, Running: 1, Backlog: 9},
		{Index: 1, Ejected: true, Queued: 0, Backlog: 0},
		{Index: 2, Queued: 1, Running: 1, Backlog: 12},
		{Index: 3, HalfOpen: true, Queued: 0, Running: 0, Backlog: 0.5},
	}
	// Round-robin cycles 0, 2, 3, 0 — the cursor skips the ejected instance.
	rr := NewRoundRobin()
	for i, want := range []int{0, 2, 3, 0} {
		if got := rr.Pick(views); got != want {
			t.Fatalf("round-robin pick %d = %d, want %d", i, got, want)
		}
	}
	// Least-loaded counts population: instance 3 (0) beats 2 (2) and 0 (4).
	if got := (LeastLoaded{}).Pick(views); got != 3 {
		t.Fatalf("least-loaded pick = %d, want 3", got)
	}
	// Slack-aware minimizes backlog: instance 3 again (0.5 vs 9 vs 12).
	if got := (SlackAware{}).Pick(views); got != 3 {
		t.Fatalf("slack-aware pick = %d, want 3", got)
	}
	// Health-weighted doubles the half-open instance's score (2*0.5+1 = 2)
	// but it still wins against backlog-heavy healthy peers (13 and 14).
	if got := (HealthWeighted{}).Pick(views); got != 3 {
		t.Fatalf("health-weighted pick = %d, want 3", got)
	}
	// All ejected: every policy reports -1.
	down := []InstanceView{{Index: 0, Ejected: true}, {Index: 1, Ejected: true}}
	for _, p := range []Policy{NewRoundRobin(), LeastLoaded{}, SlackAware{}, HealthWeighted{}} {
		if got := p.Pick(down); got != -1 {
			t.Fatalf("%s pick with all ejected = %d, want -1", p.Name(), got)
		}
	}
}

// twoInstanceCrashSet is the hand-built failover scenario: two equal
// transactions routed round-robin onto two instances, and instance 0's crash
// window [4, 6) destroying its whole fault domain mid-run.
func twoInstanceCrashSet(t *testing.T) *txn.Set {
	t.Helper()
	set, err := txn.NewSet([]*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 30, Length: 10, Weight: 1},
		{ID: 1, Arrival: 0, Deadline: 30, Length: 10, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func crashPlans() []*fault.Plan {
	return []*fault.Plan{
		{Stalls: []fault.Window{{Start: 4, Duration: 2, Kind: fault.Crash}}},
		nil,
	}
}

// TestFailoverReroutesCrashLostWork walks the full failover arithmetic by
// hand: T0 is routed to instance 0, loses 4 units of progress to the crash
// at t=4, waits out one backoff unit, fails over to instance 1 at t=5 and
// reruns from scratch behind T1 — finishing at 20, inside its deadline. The
// breaker ejects instance 0 at t=4 and half-opens it at the window end.
func TestFailoverReroutesCrashLostWork(t *testing.T) {
	set := twoInstanceCrashSet(t)
	col := &obs.Collector{}
	res, err := New(Config{
		Instances:    2,
		NewScheduler: sched.NewSRPT,
		Faults:       crashPlans(),
		Retry:        Retry{Budget: 1, BackoffBase: 1},
		Sink:         col,
	}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Routes != 2 || res.Failovers != 1 || res.Lost != 0 {
		t.Fatalf("routes=%d failovers=%d lost=%d, want 2/1/0", res.Routes, res.Failovers, res.Lost)
	}
	if res.Ejections != 1 || res.Recoveries != 1 {
		t.Fatalf("ejections=%d recoveries=%d, want 1/1", res.Ejections, res.Recoveries)
	}
	if f := set.Txns[1].FinishTime; f != 10 {
		t.Fatalf("T1 finish %v, want 10 (its instance never crashed)", f)
	}
	if f := set.Txns[0].FinishTime; f != 20 {
		t.Fatalf("T0 finish %v, want 20 (crash at 4, backoff 1, full rerun behind T1)", f)
	}
	if res.Summary.N != 2 || res.Summary.BusyTime != 24 {
		t.Fatalf("N=%d busy=%v, want 2 and 24 (20 of work + 4 lost to the crash)", res.Summary.N, res.Summary.BusyTime)
	}
	if res.Summary.Aborts != 1 || res.Summary.Restarts != 0 || res.Summary.Stalls != 1 {
		t.Fatalf("aborts=%d restarts=%d stalls=%d, want 1/0/1", res.Summary.Aborts, res.Summary.Restarts, res.Summary.Stalls)
	}
	if res.Misses != 0 || res.EffectiveMissRatio() != 0 {
		t.Fatalf("misses=%d effective=%v, want none", res.Misses, res.EffectiveMissRatio())
	}
	want := []InstanceResult{
		{Routed: 1, CrashLost: 1, Busy: 4},
		{Routed: 1, FailoversIn: 1, Completed: 2, Busy: 20},
	}
	if !reflect.DeepEqual(res.Instances, want) {
		t.Fatalf("instances = %+v, want %+v", res.Instances, want)
	}
	// The decision stream tells the same story, in order, for T0.
	var kinds []string
	for _, ev := range col.Events() {
		if ev.Txn == 0 || ev.Kind == obs.KindEject || ev.Kind == obs.KindRecover {
			kinds = append(kinds, ev.Kind.String()+":"+ev.Detail)
		}
	}
	wantKinds := []string{
		"route:0", "arrival:", "dispatch:0",
		"abort:crash", "eject:0",
		"failover:1<-0", "recover:0",
		"dispatch:1", "completion:",
	}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Fatalf("T0 event trail = %v, want %v", kinds, wantKinds)
	}
	if err := obs.Validate(col.Events()); err != nil {
		t.Fatalf("routed stream violates invariants: %v", err)
	}
}

// TestNoFailoverLosesWork pins the strawman the benchmark gate measures
// against: with failover disabled, instance 0's crash permanently destroys
// T0, and the effective miss ratio charges the loss as an SLA violation.
func TestNoFailoverLosesWork(t *testing.T) {
	set := twoInstanceCrashSet(t)
	col := &obs.Collector{}
	res, err := New(Config{
		Instances:    2,
		NewScheduler: sched.NewSRPT,
		Faults:       crashPlans(),
		NoFailover:   true,
		Sink:         col,
	}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 || res.Failovers != 0 {
		t.Fatalf("lost=%d failovers=%d, want 1/0", res.Lost, res.Failovers)
	}
	if !set.Txns[0].Shed || set.Txns[0].Finished {
		t.Fatalf("lost T0 should be marked shed and unfinished: %+v", set.Txns[0])
	}
	if res.Summary.N != 1 || res.Summary.BusyTime != 14 {
		t.Fatalf("N=%d busy=%v, want 1 and 14", res.Summary.N, res.Summary.BusyTime)
	}
	if got := res.EffectiveMissRatio(); got != 0.5 {
		t.Fatalf("effective miss ratio %v, want 0.5 (one lost of two served)", got)
	}
	var lostEv []obs.Event
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindFailover {
			lostEv = append(lostEv, ev)
		}
	}
	if len(lostEv) != 1 || lostEv[0].Detail != "lost" || lostEv[0].Txn != 0 {
		t.Fatalf("failover events = %+v, want one terminal loss of T0", lostEv)
	}
	if err := obs.Validate(col.Events()); err != nil {
		t.Fatalf("routed stream violates invariants: %v", err)
	}
}

// TestRetryBudgetExhaustion: a zero budget (set explicitly, alongside a
// non-zero backoff so the struct is not the zero value that selects
// DefaultRetry) loses crash victims exactly like NoFailover, but through the
// budget accounting.
func TestRetryBudgetExhaustion(t *testing.T) {
	set := twoInstanceCrashSet(t)
	res, err := New(Config{
		Instances:    2,
		NewScheduler: sched.NewSRPT,
		Faults:       crashPlans(),
		Retry:        Retry{Budget: 0, BackoffBase: 1},
	}).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 || res.Failovers != 0 {
		t.Fatalf("lost=%d failovers=%d, want 1/0 with an exhausted budget", res.Lost, res.Failovers)
	}
}

// clusterConfig is the shared fixture of the determinism and fleet tests:
// four instances under health-weighted routing, with a crash domain, a stall
// domain and a flaky-abort domain.
func clusterConfig(sink obs.Sink) Config {
	return Config{
		Instances:    4,
		Policy:       HealthWeighted{},
		NewScheduler: sched.NewSRPT,
		Faults: []*fault.Plan{
			{Seed: 7, AbortProb: 0.25, MaxRestarts: 2, BackoffBase: 0.5, BackoffCap: 4},
			{Stalls: []fault.Window{{Start: 40, Duration: 8, Kind: fault.Crash}}},
			{Stalls: []fault.Window{{Start: 60, Duration: 5, Kind: fault.Stall}}},
			nil,
		},
		Retry:            Retry{Budget: 2, BackoffBase: 0.5, BackoffCap: 2},
		RecoveryCooldown: 2,
		Sink:             sink,
	}
}

// clusterWorkload targets utilization 0.8 per instance: workload utilization
// is defined against one server, so a four-instance fleet takes 4x.
func clusterWorkload() *txn.Set {
	cfg := workload.Default(3.2, 0xC1A57E12)
	cfg.N = 400
	return workload.MustGenerate(cfg)
}

func streamBytes(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestClusterDeterminism replays the same seeds twice and requires
// byte-identical routed decision streams — routing, ejection, failover and
// per-instance scheduling included — plus a well-formed stream and conserved
// transaction accounting.
func TestClusterDeterminism(t *testing.T) {
	run := func() ([]obs.Event, *Result) {
		col := &obs.Collector{}
		res, err := New(clusterConfig(col)).Run(clusterWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return col.Events(), res
	}
	ev1, res1 := run()
	ev2, res2 := run()
	if !bytes.Equal(streamBytes(t, ev1), streamBytes(t, ev2)) {
		t.Fatal("same seeds, different routed decision streams")
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("same seeds, different results:\n%+v\n%+v", res1, res2)
	}
	if err := obs.Validate(ev1); err != nil {
		t.Fatalf("routed stream violates invariants: %v", err)
	}
	if res1.Summary.N+res1.Lost+res1.Shed != 400 {
		t.Fatalf("accounting leak: completed %d + lost %d + shed %d != 400",
			res1.Summary.N, res1.Lost, res1.Shed)
	}
	if res1.Ejections == 0 || res1.Failovers == 0 {
		t.Fatalf("fixture exercised no failover (ejections=%d failovers=%d); tighten the plan",
			res1.Ejections, res1.Failovers)
	}
	routed := 0
	for _, ir := range res1.Instances {
		routed += ir.Routed
	}
	if routed != res1.Routes || routed != 400-res1.Shed {
		t.Fatalf("route accounting: per-instance %d, total %d, expected %d", routed, res1.Routes, 400-res1.Shed)
	}
}

// TestSingleInstanceMatchesSim pins the degenerate fleet: one instance with
// no faults must reproduce the single-backend simulator's summary exactly on
// the same workload and policy.
func TestSingleInstanceMatchesSim(t *testing.T) {
	cfg := workload.Default(0.9, 0x51D)
	cfg.N = 300

	direct, err := sim.New(sim.Config{}).Run(workload.MustGenerate(cfg), sched.NewSRPT())
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{Instances: 1, NewScheduler: sched.NewSRPT}).Run(workload.MustGenerate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Summary, direct) {
		t.Fatalf("one-instance cluster diverged from the simulator:\ncluster: %+v\nsim:     %+v", res.Summary, direct)
	}
}

// TestFleetPacedMatchesInstant pins the live tier's pacing seam: a FakeClock
// paced fleet replay emits the identical routed stream and result as the
// unpaced engine, and the status board converges to done.
func TestFleetPacedMatchesInstant(t *testing.T) {
	colInstant := &obs.Collector{}
	resInstant, err := New(clusterConfig(colInstant)).Run(clusterWorkload())
	if err != nil {
		t.Fatal(err)
	}

	colPaced := &obs.Collector{}
	fleet := NewFleet(clusterConfig(colPaced), clusterWorkload(), FleetOptions{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
	})
	resPaced, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamBytes(t, colInstant.Events()), streamBytes(t, colPaced.Events())) {
		t.Fatal("paced fleet replay diverged from the instant run")
	}
	if !reflect.DeepEqual(resInstant, resPaced) {
		t.Fatalf("paced result diverged:\ninstant: %+v\npaced:   %+v", resInstant, resPaced)
	}
	if !fleet.Done() {
		t.Fatal("fleet not done after Run returned")
	}
	st := fleet.Status()
	if !st.Done || st.Completed != resPaced.Summary.N || len(st.Instances) != 4 {
		t.Fatalf("final status %+v inconsistent with result %+v", st, resPaced)
	}
	if st.Healthy() != 4 {
		t.Fatalf("all instances should be routable at the end, got %d healthy", st.Healthy())
	}
	if got, _ := fleet.Result(); !reflect.DeepEqual(got, resPaced) {
		t.Fatalf("Result() = %+v, want the Run outcome", got)
	}
}

// TestFleetCancellation: cancelling the context mid-replay aborts Run with
// the context error.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fleet := NewFleet(clusterConfig(nil), clusterWorkload(), FleetOptions{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
	})
	if _, err := fleet.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled fleet run returned %v, want context.Canceled", err)
	}
}

func TestClusterRejectsDependencies(t *testing.T) {
	set, err := txn.NewSet([]*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 10, Length: 1, Weight: 1},
		{ID: 1, Arrival: 0, Deadline: 10, Length: 1, Weight: 1, Deps: []txn.ID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Instances: 2, NewScheduler: sched.NewFCFS}).Run(set)
	if err == nil || !strings.Contains(err.Error(), "independent transactions only") {
		t.Fatalf("dependent workload error = %v, want the routing constraint named", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Instances: 2, NewScheduler: sched.NewFCFS}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero instances", func(c *Config) { c.Instances = 0 }, "instances"},
		{"no scheduler", func(c *Config) { c.NewScheduler = nil }, "scheduler factory"},
		{"plan count", func(c *Config) { c.Faults = []*fault.Plan{nil} }, "fault plans"},
		{"invalid plan", func(c *Config) {
			c.Faults = []*fault.Plan{{AbortProb: 2}, nil}
		}, "abort_prob"},
		{"bursts rejected", func(c *Config) {
			c.Faults = []*fault.Plan{{Bursts: []fault.Burst{{At: 1, Width: 1}}}, nil}
		}, "bursts"},
		{"negative budget", func(c *Config) { c.Retry = Retry{Budget: -1, BackoffBase: 1} }, "retry budget"},
		{"negative backoff", func(c *Config) { c.Retry = Retry{Budget: 1, BackoffBase: -1} }, "backoff_base"},
		{"cap below base", func(c *Config) { c.Retry = Retry{Budget: 1, BackoffBase: 2, BackoffCap: 1} }, "backoff_cap"},
		{"negative cooldown", func(c *Config) { c.RecoveryCooldown = -1 }, "cooldown"},
	}
	set := twoInstanceCrashSet(t)
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		_, err := New(cfg).Run(set)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	r := Retry{Budget: 5, BackoffBase: 0.25, BackoffCap: 1}
	for k, want := range map[int]float64{1: 0.25, 2: 0.5, 3: 1, 4: 1} {
		if got := r.backoff(k); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", k, got, want)
		}
	}
	if got := (Retry{Budget: 1}).backoff(1); got != 0 {
		t.Fatalf("zero-base backoff = %v, want 0", got)
	}
}
