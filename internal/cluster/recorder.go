package cluster

import (
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/txn"
)

// Metric names of the cluster tier; the routing/failover taxonomy is
// documented in docs/ROBUSTNESS.md.
const (
	MetricRouted     = "asets_cluster_routed_total"
	MetricFailovers  = "asets_cluster_failovers_total"
	MetricLost       = "asets_cluster_lost_total"
	MetricEjections  = "asets_cluster_ejections_total"
	MetricRecoveries = "asets_cluster_recoveries_total"
	MetricHealthy    = "asets_cluster_healthy_instances"
)

// recorder fans every decision of the cluster engine into the unified
// instrumentation layer. The engine is its own emission point — unlike the
// single-backend path there is no sched.Instrument wrapper, because N
// independently-batching wrappers over one sink could deliver events out of
// global time order. All events funnel through here, unbatched, on the one
// engine goroutine, so the routed stream is totally ordered by emission.
type recorder struct {
	sink obs.Sink
	// fr handles the per-transaction fault events (abort, restart, shed)
	// with the single-backend taxonomy, so routed and single-backend streams
	// read identically at the transaction level.
	fr *fault.Recorder

	arrivals    *obs.Counter
	dispatches  *obs.Counter
	preemptions *obs.Counter
	completions *obs.Counter
	missesC     *obs.Counter
	tardiness   *obs.Histogram
	response    *obs.Histogram

	stallsC       *obs.Counter
	validateFails *obs.Counter

	routed     *obs.Counter
	failovers  *obs.Counter
	lost       *obs.Counter
	ejections  *obs.Counter
	recoveries *obs.Counter
	healthy    *obs.Gauge
}

// newRecorder wires a recorder to sink and reg (either may be nil). The
// decision-loop counters reuse the asets_sched_* names of sched.Instrument
// so cluster and single-backend runs share one metric taxonomy.
//
//lint:coldpath recorder wiring is per-run setup
func newRecorder(sink obs.Sink, reg *obs.Registry) *recorder {
	if sink == nil {
		sink = obs.Discard
	}
	r := &recorder{sink: sink, fr: fault.NewRecorder(sink, reg)}
	if reg != nil {
		r.stallsC = reg.Counter(fault.MetricStalls, "backend stall/crash windows entered")
		r.validateFails = reg.Counter(contention.MetricValidateFails, "commit-time validation failures (contention re-executions)")
		r.arrivals = reg.Counter(sched.MetricArrivals, "transactions submitted to the scheduler")
		r.dispatches = reg.Counter(sched.MetricDispatches, "transactions checked out to a server")
		r.preemptions = reg.Counter(sched.MetricPreemptions, "transactions returned unfinished after running")
		r.completions = reg.Counter(sched.MetricCompletions, "transactions finished")
		r.missesC = reg.Counter(sched.MetricMisses, "completions past the deadline")
		r.tardiness = reg.Histogram(sched.MetricTardiness, "tardiness of completed transactions", 2)
		r.response = reg.Histogram(sched.MetricResponse, "response time (finish - arrival) of completed transactions", 2)
		r.routed = reg.Counter(MetricRouted, "transactions assigned to an instance by the routing tier")
		r.failovers = reg.Counter(MetricFailovers, "crash-lost transactions re-enqueued to a surviving instance")
		r.lost = reg.Counter(MetricLost, "transactions permanently lost (retry budget exhausted or failover disabled)")
		r.ejections = reg.Counter(MetricEjections, "instances ejected by the circuit-breaker")
		r.recoveries = reg.Counter(MetricRecoveries, "ejected instances half-opened after recovery")
		r.healthy = reg.Gauge(MetricHealthy, "instances currently accepting routed work")
	}
	return r
}

func (r *recorder) Arrival(now float64, t *txn.Transaction) {
	if r.arrivals != nil {
		r.arrivals.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindArrival, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining,
	})
}

func (r *recorder) Dispatch(now float64, t *txn.Transaction, inst string) {
	if r.dispatches != nil {
		r.dispatches.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindDispatch, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining, Detail: inst,
	})
}

func (r *recorder) Preempt(now float64, t *txn.Transaction) {
	if r.preemptions != nil {
		r.preemptions.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindPreempt, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining,
	})
}

func (r *recorder) Completion(now float64, t *txn.Transaction) {
	tard := t.Tardiness()
	if r.completions != nil {
		r.completions.Inc()
		r.tardiness.Observe(tard)
		r.response.Observe(t.FinishTime - t.Arrival)
		if tard > 0 {
			r.missesC.Inc()
		}
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindCompletion, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Tardiness: tard,
	})
	if tard > 0 {
		r.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindDeadlineMiss, Txn: t.ID, Workflow: -1,
			Deadline: t.Deadline, Tardiness: tard,
		})
	}
}

// Abort, Restart and Shed reuse the single-backend fault taxonomy verbatim
// (including the load-bearing "crash" abort detail the span and invariant
// layers classify on).
func (r *recorder) Abort(now float64, t *txn.Transaction, detail string, retryAt float64) {
	r.fr.Abort(now, t, detail, retryAt)
}

func (r *recorder) Restart(now float64, t *txn.Transaction) { r.fr.Restart(now, t) }

func (r *recorder) Shed(now float64, t *txn.Transaction, controller string) {
	r.fr.Shed(now, t, controller)
}

// StallEntered is the instance-tagged variant of fault.Recorder.StallEntered:
// the detail "crash@2" names both the window kind and the fault domain it
// hit. Nothing downstream classifies on stall details, so the tag is free.
func (r *recorder) StallEntered(now float64, w fault.Window, inst string) {
	if r.stallsC != nil {
		r.stallsC.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindStall, Txn: -1, Workflow: -1,
		Remaining: w.Duration, Detail: w.Kind.String() + "@" + inst,
	})
}

// ValidateFail records a commit-time validation failure: the transaction's
// read set was invalidated by a concurrent commit on its instance, so it
// re-executes from scratch with a fresh incarnation (docs/CONTENTION.md).
// The detail names the instance, mirroring Dispatch.
func (r *recorder) ValidateFail(now float64, t *txn.Transaction, inst string) {
	if r.validateFails != nil {
		r.validateFails.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindValidateFail, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Length, Detail: inst,
	})
}

// Route records the router assigning an arriving transaction to an
// instance; the event precedes the arrival it causes.
func (r *recorder) Route(now float64, t *txn.Transaction, inst string) {
	if r.routed != nil {
		r.routed.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindRoute, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining, Detail: inst,
	})
}

// Failover records a crash-lost transaction landing on a new instance
// (detail "from->to").
func (r *recorder) Failover(now float64, t *txn.Transaction, detail string) {
	if r.failovers != nil {
		r.failovers.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindFailover, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining, Detail: detail,
	})
}

// Lost records a crash-lost transaction dropped for good: its retry budget
// is exhausted (or failover is disabled). The event kind is still failover
// — the routing tier made the decision — with the terminal detail "lost".
func (r *recorder) Lost(now float64, t *txn.Transaction) {
	if r.lost != nil {
		r.lost.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindFailover, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Detail: "lost",
	})
}

// Eject records the circuit-breaker removing a crashed instance from the
// routing set.
func (r *recorder) Eject(now float64, inst string, healthy int) {
	if r.ejections != nil {
		r.ejections.Inc()
		r.healthy.Set(float64(healthy))
	}
	r.sink.Emit(obs.Event{Time: now, Kind: obs.KindEject, Txn: -1, Workflow: -1, Detail: inst})
}

// Recover records an ejected instance's breaker half-opening after its
// outage ended.
func (r *recorder) Recover(now float64, inst string, healthy int) {
	if r.recoveries != nil {
		r.recoveries.Inc()
		r.healthy.Set(float64(healthy))
	}
	r.sink.Emit(obs.Event{Time: now, Kind: obs.KindRecover, Txn: -1, Workflow: -1, Detail: inst})
}
