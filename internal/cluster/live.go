package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/slo"
	"repro/internal/txn"
)

// InstanceStatus is one instance's slice of a fleet snapshot — the payload
// behind the live server's per-instance /healthz detail.
type InstanceStatus struct {
	// Index is the instance's position in the fleet.
	Index int `json:"index"`
	// State is the circuit-breaker view: "healthy", "half-open", "stalled"
	// or "ejected".
	State string `json:"state"`
	// Queued and Running describe the instance's current occupancy; Backlog
	// is its remaining admitted work in simulated units.
	Queued  int     `json:"queued"`
	Running int     `json:"running"`
	Backlog float64 `json:"backlog"`
	// Routed, FailoversIn and CrashLost mirror InstanceResult, live.
	Routed      int `json:"routed"`
	FailoversIn int `json:"failovers_in"`
	CrashLost   int `json:"crash_lost"`
	// Completed and Misses count work finished here so far.
	Completed int `json:"completed"`
	Misses    int `json:"misses"`
	// Degraded reports the instance's admission controller state.
	Degraded bool `json:"degraded"`
}

// FleetStatus is a point-in-time snapshot of a cluster run, safe to read
// while the engine runs.
type FleetStatus struct {
	// Now is the current simulated time; Done reports run completion.
	Now  float64 `json:"now"`
	Done bool    `json:"done"`
	// Routes, Failovers, Lost, Ejections and Recoveries mirror Result, live.
	Routes     int `json:"routes"`
	Failovers  int `json:"failovers"`
	Lost       int `json:"lost"`
	Ejections  int `json:"ejections"`
	Recoveries int `json:"recoveries"`
	// Completed and Shed count transactions finished and rejected so far.
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	// Instances holds the per-instance detail, in index order.
	Instances []InstanceStatus `json:"instances"`
}

// Healthy counts instances currently accepting routed work.
func (fs FleetStatus) Healthy() int {
	h := 0
	for _, is := range fs.Instances {
		if is.State != "ejected" {
			h++
		}
	}
	return h
}

// InstanceHealth is one instance's slice of the fleet SLO rollup: the
// circuit-breaker view plus the fault domain's SLO engine state.
type InstanceHealth struct {
	Index int       `json:"index"`
	State string    `json:"state"` // "healthy", "half-open", "stalled" or "ejected"
	SLO   slo.State `json:"slo"`
}

// FleetHealth is the aggregate SLO rollup of a cluster run — the payload
// behind the live server's GET /api/fleet, and the signal its aggregate
// /healthz degrades on. Enabled is false (and Instances nil) when the run
// has no SLO configuration.
type FleetHealth struct {
	Now     float64 `json:"now"`
	Done    bool    `json:"done"`
	Enabled bool    `json:"enabled"`
	// Degraded reports whether any instance's fast-window burn ratio is at
	// or above its threshold (slo.State.Burning) — alert hysteresis does not
	// delay it, so the probe degrades as soon as a fast window burns.
	Degraded bool `json:"degraded"`
	// ActiveAlerts, Fires and Resolves aggregate rule transitions fleet-wide.
	ActiveAlerts int `json:"active_alerts"`
	Fires        int `json:"fires"`
	Resolves     int `json:"resolves"`
	// WorstBurn is the highest fast-window burn ratio across the fleet.
	WorstBurn float64 `json:"worst_burn"`
	// Instances holds the per-instance detail, in index order.
	Instances []InstanceHealth `json:"instances,omitempty"`
}

// fleetTotals carries the engine's run-wide counters into a publish.
type fleetTotals struct {
	routes, failovers, lost, ejections, recoveries, done, shed int
}

// StatusBoard is the engine→observer seam for live runs: the engine
// publishes a fleet snapshot at every event instant and HTTP handlers read
// it concurrently. Pure simulation runs leave Config.Status nil and pay
// nothing.
type StatusBoard struct {
	mu sync.Mutex
	fs FleetStatus // guarded by mu
	fh FleetHealth // guarded by mu
}

// Snapshot returns a copy of the latest published fleet state.
func (b *StatusBoard) Snapshot() FleetStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs := b.fs
	fs.Instances = append([]InstanceStatus(nil), b.fs.Instances...)
	return fs
}

// Health returns a copy of the latest published fleet SLO rollup. Each
// publish replaces the per-instance slo.State values wholesale, so the copy
// never aliases state a later publish mutates.
func (b *StatusBoard) Health() FleetHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	fh := b.fh
	fh.Instances = append([]InstanceHealth(nil), b.fh.Instances...)
	return fh
}

// publish replaces the board's snapshot from engine state. Called on the
// engine goroutine only.
func (b *StatusBoard) publish(now float64, finished bool, insts []*instance, tot fleetTotals) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fs.Now = now
	b.fs.Done = finished
	b.fs.Routes = tot.routes
	b.fs.Failovers = tot.failovers
	b.fs.Lost = tot.lost
	b.fs.Ejections = tot.ejections
	b.fs.Recoveries = tot.recoveries
	b.fs.Completed = tot.done
	b.fs.Shed = tot.shed
	if cap(b.fs.Instances) < len(insts) {
		//lint:ignore hotpath-alloc one allocation per live run; reused across every publish after
		b.fs.Instances = make([]InstanceStatus, len(insts))
	}
	b.fs.Instances = b.fs.Instances[:len(insts)]
	for i, inst := range insts {
		state := "healthy"
		switch {
		case inst.ejected:
			state = "ejected"
		case inst.halfOpen:
			state = "half-open"
		default:
			if _, _, stalled := inst.inStall(now); stalled {
				state = "stalled"
			}
		}
		running := 0
		if inst.running != nil {
			running = 1
		}
		b.fs.Instances[i] = InstanceStatus{
			Index: inst.idx, State: state,
			Queued: inst.queued, Running: running, Backlog: inst.backlog,
			Routed: inst.routed, FailoversIn: inst.failoversIn,
			CrashLost: inst.crashLost, Completed: inst.completed,
			Misses: inst.misses, Degraded: inst.degraded,
		}
	}
	if len(insts) == 0 || insts[0].slo == nil {
		return
	}
	// SLO rollup: aggregate the per-instance engine states. Live runs only
	// (Status is nil in pure simulation), so the snapshot allocations are
	// wall-clock-paced, not simulation hot-path work.
	b.fh.Now = now
	b.fh.Done = finished
	b.fh.Enabled = true
	b.fh.Degraded = false
	b.fh.ActiveAlerts = 0
	b.fh.Fires = 0
	b.fh.Resolves = 0
	b.fh.WorstBurn = 0
	if cap(b.fh.Instances) < len(insts) {
		//lint:ignore hotpath-alloc one allocation per live run; reused across every publish after
		b.fh.Instances = make([]InstanceHealth, len(insts))
	}
	b.fh.Instances = b.fh.Instances[:len(insts)]
	for i, inst := range insts {
		//lint:ignore hotpath-alloc live-run health snapshot, wall-clock paced
		st := inst.slo.State()
		b.fh.Instances[i] = InstanceHealth{Index: inst.idx, State: b.fs.Instances[i].State, SLO: st}
		if st.Burning {
			b.fh.Degraded = true
		}
		b.fh.ActiveAlerts += st.ActiveAlerts
		b.fh.Fires += st.Fires
		b.fh.Resolves += st.Resolves
		if st.FastBurn > b.fh.WorstBurn {
			b.fh.WorstBurn = st.FastBurn
		}
	}
}

// FleetOptions configures a live cluster replay.
type FleetOptions struct {
	// TimeScale is the wall-clock duration of one simulated time unit;
	// default 200 microseconds, matching executor.Options.
	TimeScale time.Duration
	// Clock paces the replay; nil selects executor.RealClock. A FakeClock
	// replays the identical schedule instantly and bit-deterministically —
	// the same seam, reused (docs/DETERMINISM.md).
	Clock executor.Clock
}

// Fleet runs a cluster configuration over live wall-clock time: the
// multi-instance counterpart of executor.Executor, built by composing the
// deterministic cluster engine with the executor's Clock seam through
// Config.Pace. Event-time decisions are exactly the simulator's; wall-clock
// sleeps only pace execution, so a paced run completes with the same routed
// schedule as the instant replay.
type Fleet struct {
	sim   *Sim
	set   *txn.Set
	opts  FleetOptions
	board *StatusBoard

	mu   sync.Mutex
	done bool    // guarded by mu
	res  *Result // guarded by mu
	err  error   // guarded by mu
}

// NewFleet prepares a live cluster replay of set under cfg. The fleet
// installs its own StatusBoard (overriding cfg.Status) and pacing hook
// (overriding cfg.Pace); configuration errors surface from Run.
func NewFleet(cfg Config, set *txn.Set, opts FleetOptions) *Fleet {
	if opts.TimeScale <= 0 {
		opts.TimeScale = 200 * time.Microsecond
	}
	if opts.Clock == nil {
		opts.Clock = executor.RealClock{}
	}
	f := &Fleet{set: set, opts: opts, board: &StatusBoard{}}
	cfg.Status = f.board
	f.sim = New(cfg)
	return f
}

// Status returns the latest fleet snapshot; safe to call while Run runs.
func (f *Fleet) Status() FleetStatus { return f.board.Snapshot() }

// Health returns the latest fleet SLO rollup; safe to call while Run runs.
// FleetHealth.Enabled is false when the run has no SLO configuration.
func (f *Fleet) Health() FleetHealth { return f.board.Health() }

// Done reports whether Run has finished.
func (f *Fleet) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Result returns the run's outcome once Done; (nil, nil) before that.
func (f *Fleet) Result() (*Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		return nil, nil
	}
	return f.res, f.err
}

// Run replays the workload to completion or until ctx is cancelled.
func (f *Fleet) Run(ctx context.Context) (*Result, error) {
	clock := f.opts.Clock
	start := clock.Now()
	f.sim.cfg.Pace = func(next float64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		at := start.Add(time.Duration(next * float64(f.opts.TimeScale)))
		d := at.Sub(clock.Now())
		if d <= 0 {
			return ctx.Err()
		}
		return clock.Sleep(ctx, d)
	}
	res, err := f.sim.Run(f.set)
	f.mu.Lock()
	f.done = true
	f.res, f.err = res, err
	f.mu.Unlock()
	return res, err
}
