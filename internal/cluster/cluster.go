package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/admit"
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slo"
	"repro/internal/txn"
)

// completionEpsilon mirrors the simulator's float tolerance for slice
// boundaries landing numerically on completion instants.
const completionEpsilon = 1e-9

// instance is one fault domain: a single-server backend with its own
// scheduler queue, admission controller and fault injector.
type instance struct {
	idx  int
	name string // strconv.Itoa(idx), interned once for event details

	sched sched.Scheduler
	ctrl  admit.Controller
	inj   *fault.Injector
	// slo is the instance's SLO alert engine (nil unless Config.SLO is set):
	// each fault domain is its own alerting domain.
	slo *slo.Engine
	// val is the instance's commit-time validator — each fault domain is an
	// independent database, so versions never flow across instances; nil on
	// keyless workloads (docs/CONTENTION.md).
	val *contention.Validator

	running *txn.Transaction
	queued  int     // admitted, unfinished, not running, not backing off
	backlog float64 // remaining work: running + queued + backing off
	busy    float64

	ejected   bool    // breaker open: out of the routing set
	halfOpen  bool    // breaker half-open: routable, on probation
	reopenAt  float64 // when an ejected breaker half-opens
	stallSeen int     // last outage window whose entry was recorded
	crashSeen int     // last crash window whose instance-wide loss was applied
	delivered bool    // got an arrival/restart/failover at the current instant

	routed      int
	failoversIn int
	crashLost   int
	completed   int
	misses      int
	degraded    bool
}

// inStall reports whether the instance is inside an outage window at now.
func (in *instance) inStall(now float64) (fault.Window, int, bool) {
	if in.inj == nil {
		return fault.Window{}, -1, false
	}
	return in.inj.InStall(now)
}

// view builds the instance's routing signal.
func (in *instance) view(now float64) InstanceView {
	_, _, stalled := in.inStall(now)
	running := 0
	if in.running != nil {
		running = 1
	}
	return InstanceView{
		Index: in.idx, Ejected: in.ejected, HalfOpen: in.halfOpen,
		Stalled: stalled, Running: running, Queued: in.queued, Backlog: in.backlog,
	}
}

// InstanceResult is one instance's share of a cluster run.
type InstanceResult struct {
	// Routed counts arrivals the router placed here; FailoversIn counts
	// crash-lost transactions re-enqueued here from other instances.
	Routed      int `json:"routed"`
	FailoversIn int `json:"failovers_in"`
	// CrashLost counts transactions this instance's crash windows destroyed
	// (in-flight, queued and backing off).
	CrashLost int `json:"crash_lost"`
	// Completed and Misses count transactions finished here and those that
	// finished past their deadline.
	Completed int `json:"completed"`
	Misses    int `json:"misses"`
	// Busy is the time this instance's server spent serving.
	Busy float64 `json:"busy"`
}

// Result is the outcome of one cluster run.
type Result struct {
	// Summary aggregates the completed transactions exactly like a
	// single-backend run; permanently lost transactions are excluded from
	// its tardiness aggregates (they are counted in Summary.Shed alongside
	// admission sheds, and separated again here).
	Summary *metrics.Summary
	// Routes counts routing decisions for fresh arrivals; Failovers counts
	// crash-lost transactions re-enqueued to survivors; Lost counts
	// transactions dropped for good (budget exhausted or NoFailover).
	Routes    int `json:"routes"`
	Failovers int `json:"failovers"`
	Lost      int `json:"lost"`
	// Shed counts admission-controller rejections (Summary.Shed - Lost).
	Shed int `json:"shed"`
	// Misses counts completions past their deadline, across instances.
	Misses int `json:"misses"`
	// Ejections and Recoveries count circuit-breaker transitions.
	Ejections  int `json:"ejections"`
	Recoveries int `json:"recoveries"`
	// Instances holds the per-instance breakdown, in index order.
	Instances []InstanceResult `json:"instances"`
	// SLO holds each instance's final SLO engine state, in index order; nil
	// when Config.SLO was unset.
	SLO []slo.State `json:"slo,omitempty"`
}

// EffectiveMissRatio is the SLA measure the failover gate is judged on: a
// permanently lost transaction is an unbounded SLA violation, so it counts
// as a miss over the population the cluster accepted (completed + lost).
// Admission sheds are excluded, exactly as in metrics.Summary.MissRatio.
func (r *Result) EffectiveMissRatio() float64 {
	served := r.Summary.N + r.Lost
	if served == 0 {
		return 0
	}
	return float64(r.Misses+r.Lost) / float64(served)
}

// retryEntry is one crash-lost transaction waiting out its failover backoff.
type retryEntry struct {
	at   float64
	t    *txn.Transaction
	from int // instance the transaction was lost on
}

// Sim is a reusable cluster engine bound to one Config, mirroring sim.New.
type Sim struct {
	cfg Config
}

// New returns a cluster engine bound to cfg. Configuration errors surface
// on Run.
func New(cfg Config) *Sim { return &Sim{cfg: cfg} }

// Run routes set across the fleet to completion and returns the result.
// The workload must be dependency-free: the routing tier places individual
// transactions, and per-instance schedulers never observe completions on
// other instances, so a cross-instance dependency could never become ready
// (workflow-colocated routing is future work — see docs/ROBUSTNESS.md).
func (e *Sim) Run(set *txn.Set) (*Result, error) {
	cfg := e.cfg
	retry, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	n := set.Len()
	for _, t := range set.Txns {
		if len(t.Deps) > 0 {
			return nil, fmt.Errorf("cluster: transaction %d has dependencies; the cluster tier routes independent transactions only", t.ID)
		}
	}
	set.ResetAll()

	policy := cfg.Policy
	if policy == nil {
		policy = NewRoundRobin()
	}
	rec := newRecorder(cfg.Sink, cfg.Metrics)

	// newSched builds one instance's scheduler: at construction and again
	// after every crash, because a crash is a process restart — the drained
	// scheduler's internal bookkeeping (e.g. ASETS*'s checked-out set) must
	// not survive into the revived instance, or a transaction failing over
	// back to it would be stuck half-checked-out forever.
	newSched := func() sched.Scheduler {
		s := cfg.NewScheduler()
		s.Init(set)
		// Policies that narrate their internal decisions (ASETS* aging and
		// mode switches) emit straight into the ordered cluster stream.
		if ss, ok := s.(sched.SinkSetter); ok && cfg.Sink != nil {
			ss.SetSink(rec.sink)
		}
		return s
	}

	insts := make([]*instance, cfg.Instances)
	for i := range insts {
		inst := &instance{idx: i, name: strconv.Itoa(i), stallSeen: -1, crashSeen: -1}
		inst.sched = newSched()
		if cfg.NewAdmit != nil {
			inst.ctrl = cfg.NewAdmit()
		}
		if len(cfg.Faults) > 0 && !cfg.Faults[i].Zero() {
			inst.inj = fault.NewInjector(cfg.Faults[i], n)
		}
		inst.val = contention.NewValidator(set)
		if cfg.SLO != nil {
			sc := *cfg.SLO
			sc.Instance = inst.name
			inst.slo = slo.NewEngine(sc, cfg.Metrics)
			// Alerts funnel through the recorder's sink unbatched on the
			// engine goroutine, like every other routed decision event.
			inst.slo.Bind(rec.sink)
		}
		insts[i] = inst
	}

	// Arrival order: by time, ties by ID.
	order := make([]*txn.Transaction, n)
	copy(order, set.Txns)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Arrival != order[j].Arrival {
			return order[i].Arrival < order[j].Arrival
		}
		return order[i].ID < order[j].ID
	})

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		scale, windows := 1+retry.Budget, 0
		for _, p := range cfg.Faults {
			if p == nil {
				continue
			}
			if p.MaxRestarts > scale-1-retry.Budget {
				scale = 1 + retry.Budget + p.MaxRestarts
			}
			windows += len(p.Stalls)
		}
		maxSteps = (8*n+64)*scale + 16*windows + 64*cfg.Instances
	}
	if contention.HasKeys(set) {
		// Validation failures re-execute from scratch; each failure needs a
		// distinct conflicting commit inside the victim's open window, so a
		// per-instance population of at most n bounds the extra steps
		// quadratically (same bound as the single-backend simulator).
		maxSteps = 2*maxSteps + 2*n*n
	}

	var (
		now        float64
		nextArr    int
		done       int
		shedCnt    int
		lost       int
		routes     int
		failovers  int
		ejections  int
		recoveries int
		steps      int
		owner      = make([]int, n) // current instance per transaction, -1 when unrouted
		fails      = make([]int, n) // failovers consumed per transaction
		retries    []retryEntry     // sorted by (at, id)
		pendingArr []*txn.Transaction
		views      = make([]InstanceView, cfg.Instances)
		victims    []*txn.Transaction
	)
	for i := range owner {
		owner[i] = -1
	}

	healthyCount := func() int {
		h := 0
		for _, inst := range insts {
			if !inst.ejected {
				h++
			}
		}
		return h
	}
	buildViews := func() []InstanceView {
		for i, inst := range insts {
			views[i] = inst.view(now)
		}
		return views
	}
	pick := func(t *txn.Transaction) (int, error) {
		j := policy.Pick(buildViews())
		if j == -1 {
			return -1, nil
		}
		if j < 0 || j >= len(insts) || insts[j].ejected {
			return 0, fmt.Errorf("cluster: policy %q picked invalid instance %d for transaction %d", policy.Name(), j, t.ID)
		}
		return j, nil
	}
	pushRetry := func(at float64, t *txn.Transaction, from int) {
		i := sort.Search(len(retries), func(i int) bool {
			if retries[i].at != at {
				return retries[i].at > at
			}
			return retries[i].t.ID > t.ID
		})
		retries = append(retries, retryEntry{})
		copy(retries[i+1:], retries[i:])
		retries[i] = retryEntry{at: at, t: t, from: from}
	}
	// earliestReopen is the deferral instant when every instance is ejected.
	earliestReopen := func() float64 {
		at := math.Inf(1)
		for _, inst := range insts {
			if inst.ejected && inst.reopenAt < at {
				at = inst.reopenAt
			}
		}
		return at
	}
	// deliverTo lands t on instance j's queue (failover or deferred/fresh
	// arrival, after any admission decision).
	deliverTo := func(j int, t *txn.Transaction) {
		inst := insts[j]
		owner[t.ID] = j
		inst.queued++
		inst.backlog += t.Remaining
		inst.delivered = true
		if inst.slo != nil {
			inst.slo.Arrive(obs.WeightClassIndex(t.Weight))
		}
		inst.sched.OnArrival(now, t)
	}
	// admitAt consults instance j's controller for a fresh arrival; it
	// returns false when the transaction was shed.
	admitAt := func(j int, t *txn.Transaction) bool {
		inst := insts[j]
		if inst.ctrl == nil {
			return true
		}
		running := 0
		if inst.running != nil {
			running = 1
		}
		held := 0
		if inst.inj != nil {
			held = inst.inj.Held()
		}
		st := admit.State{
			Now: now, Queued: inst.queued + held, Running: running, Servers: 1,
			Backlog: inst.backlog, Completed: inst.completed, Misses: inst.misses,
		}
		if inst.ctrl.Admit(t, st) {
			return true
		}
		t.Shed = true
		shedCnt++
		rec.Shed(now, t, inst.ctrl.Name())
		return false
	}
	// routeOne places one transaction that is free to go anywhere. It
	// returns false when no instance is routable (caller defers).
	routeOne := func(t *txn.Transaction) (bool, error) {
		j, err := pick(t)
		if err != nil {
			return false, err
		}
		if j == -1 {
			return false, nil
		}
		rec.Route(now, t, insts[j].name)
		routes++
		if !admitAt(j, t) {
			return true, nil
		}
		insts[j].routed++
		rec.Arrival(now, t)
		deliverTo(j, t)
		return true, nil
	}
	publish := func(finished bool) {
		if cfg.Status == nil {
			return
		}
		cfg.Status.publish(now, finished, insts, fleetTotals{
			routes: routes, failovers: failovers, lost: lost,
			ejections: ejections, recoveries: recoveries, done: done, shed: shedCnt,
		})
	}

	for done+shedCnt+lost < n {
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("cluster: exceeded %d scheduling steps with %d/%d transactions complete (scheduler or policy livelock?)", maxSteps, done, n)
		}
		publish(false)

		// Fill idle, serving instances.
		for _, inst := range insts {
			if inst.running != nil || inst.ejected {
				continue
			}
			if _, _, stalled := inst.inStall(now); stalled {
				continue
			}
			t := inst.sched.Next(now)
			if t == nil {
				continue
			}
			if t.Finished {
				return nil, fmt.Errorf("cluster: instance %d scheduler returned finished transaction %d", inst.idx, t.ID)
			}
			if t.Arrival > now {
				return nil, fmt.Errorf("cluster: instance %d scheduler returned transaction %d before its arrival (%v > %v)", inst.idx, t.ID, t.Arrival, now)
			}
			t.Started = true
			if inst.val != nil {
				inst.val.Begin(t)
			}
			inst.queued--
			inst.running = t
			rec.Dispatch(now, t, inst.name)
		}

		// Next event: earliest completion, arrival, failover re-enqueue,
		// restart expiry, outage window boundary or breaker reopen.
		event := math.Inf(1)
		for _, inst := range insts {
			if inst.running != nil {
				if f := now + inst.running.Remaining; f < event {
					event = f
				}
			}
			if inst.inj != nil {
				if r := inst.inj.NextRestart(); r < event {
					event = r
				}
				if w, _, ok := inst.inj.InStall(now); ok {
					if w.End() < event {
						event = w.End()
					}
				} else if ss := inst.inj.NextStallStart(now); ss < event {
					event = ss
				}
			}
			if inst.ejected && inst.reopenAt > now && inst.reopenAt < event {
				event = inst.reopenAt
			}
		}
		if nextArr < n && order[nextArr].Arrival < event {
			event = order[nextArr].Arrival
		}
		if len(retries) > 0 && retries[0].at < event {
			event = retries[0].at
		}
		if math.IsInf(event, 1) {
			return nil, fmt.Errorf("cluster: no ready transaction and no future events with %d/%d transactions complete", done+shedCnt+lost, n)
		}
		if event < now {
			event = now
		}
		if event > now && cfg.Pace != nil {
			if err := cfg.Pace(event); err != nil {
				return nil, err
			}
		}

		// Advance every running server to the event.
		dt := event - now
		if dt > 0 {
			for _, inst := range insts {
				if inst.running != nil {
					inst.running.Remaining -= dt
					inst.busy += dt
					inst.backlog -= dt
				}
			}
		}
		now = event

		// Window boundaries this advance crossed: every instance's SLO
		// engine closes its tumbling windows now, in index order, so alert
		// transitions (stamped with the boundary time) enter the routed
		// stream before any event of the new instant.
		if cfg.SLO != nil {
			for _, inst := range insts {
				inst.slo.Advance(now)
			}
		}

		// Completions (or keyed aborts) per instance, in index order.
		for _, inst := range insts {
			t := inst.running
			if t == nil || t.Remaining > completionEpsilon {
				continue
			}
			inst.running = nil
			if inst.val != nil && !inst.val.CommitCheck(t) {
				// Read-set invalidated by a concurrent commit on this
				// instance: rewind and requeue for a fresh incarnation,
				// exactly like the single-backend validate-fail path.
				inst.backlog += t.Length - t.Remaining
				t.Remaining = t.Length
				rec.ValidateFail(now, t, inst.name)
				inst.queued++
				inst.delivered = true
				inst.sched.OnPreempt(now, t)
				continue
			}
			if inst.val == nil && inst.inj != nil && inst.inj.AbortsAttempt(t) {
				inst.backlog += t.Length - t.Remaining
				t.Remaining = t.Length
				retryAt := inst.inj.RecordAbort(now, t)
				rec.Abort(now, t, "abort", retryAt)
				continue
			}
			inst.backlog -= t.Remaining
			t.Remaining = 0
			t.Finished = true
			t.FinishTime = now
			done++
			inst.completed++
			inst.halfOpen = false // a completion confirms recovery
			owner[t.ID] = -1
			inst.sched.OnCompletion(now, t)
			tard := t.Tardiness()
			if tard > 0 {
				inst.misses++
			}
			rec.Completion(now, t)
			if inst.slo != nil {
				inst.slo.Complete(obs.WeightClassIndex(t.Weight), tard, now-t.Arrival)
			}
			if inst.ctrl != nil {
				inst.ctrl.Complete(t, tard > 0)
				inst.degraded = inst.ctrl.Degraded()
			}
		}

		// Outage windows opening at this instant: stalls preempt the
		// running transaction back (progress preserved); a crash destroys
		// the whole instance — in-flight, queued and backing-off work — and
		// the breaker ejects it from the routing set.
		for _, inst := range insts {
			w, idx, ok := inst.inStall(now)
			if !ok {
				continue
			}
			if idx != inst.stallSeen {
				inst.stallSeen = idx
				inst.inj.RecordStallEntered()
				rec.StallEntered(now, w, inst.name)
			}
			if w.Kind == fault.Crash && idx != inst.crashSeen {
				inst.crashSeen = idx
				victims = victims[:0]
				if inst.running != nil {
					victims = append(victims, inst.running)
					inst.running = nil
				}
				for {
					t := inst.sched.Next(now)
					if t == nil {
						break
					}
					victims = append(victims, t)
				}
				victims = append(victims, inst.inj.DrainHeld()...)
				sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
				inst.queued = 0
				inst.backlog = 0
				// Process restart: the revived instance gets a fresh
				// scheduler, so no drained transaction's bookkeeping leaks
				// into its next life.
				inst.sched = newSched()
				for _, t := range victims {
					inst.crashLost++
					inst.inj.RecordCrashLoss(t)
					rec.Abort(now, t, "crash", now)
					if inst.slo != nil {
						// The crash removed the transaction from this fault
						// domain; a failover re-arrives it on the survivor.
						inst.slo.Drop(obs.WeightClassIndex(t.Weight))
					}
					t.Remaining = t.Length // new incarnation, arrival preserved
					if inst.val != nil {
						// The in-flight incarnation dies with the process;
						// committed versions survive the restart.
						inst.val.Reset(t)
					}
					owner[t.ID] = -1
					if cfg.NoFailover || fails[t.ID] >= retry.Budget {
						lost++
						t.Shed = true
						rec.Lost(now, t)
						continue
					}
					fails[t.ID]++
					pushRetry(now+retry.backoff(fails[t.ID]), t, inst.idx)
				}
				if !inst.ejected {
					inst.ejected = true
					inst.halfOpen = false
					ejections++
				}
				if at := w.End() + cfg.RecoveryCooldown; at > inst.reopenAt {
					inst.reopenAt = at
				}
				rec.Eject(now, inst.name, healthyCount())
				continue
			}
			if inst.running != nil {
				// Stall: preemptive-resume — the transaction keeps its
				// progress and waits out the window in the queue.
				rec.Preempt(now, inst.running)
				inst.queued++
				inst.sched.OnPreempt(now, inst.running)
				inst.running = nil
			}
		}

		// Breaker recoveries: an ejected instance whose reopen instant
		// passed (and whose outage is over) half-opens back into the
		// routing set.
		for _, inst := range insts {
			if !inst.ejected || now < inst.reopenAt {
				continue
			}
			if _, _, stalled := inst.inStall(now); stalled {
				continue
			}
			inst.ejected = false
			inst.halfOpen = true
			recoveries++
			rec.Recover(now, inst.name, healthyCount())
		}

		// Keyed-abort restarts return to their own instance's queue.
		for _, inst := range insts {
			if inst.inj == nil {
				continue
			}
			for _, t := range inst.inj.PopDueRestarts(now) {
				rec.Restart(now, t)
				inst.queued++
				inst.delivered = true
				inst.sched.OnPreempt(now, t)
			}
		}

		// Failover re-enqueues whose backoff expired: route each to a
		// surviving instance, or defer until one exists.
		due := 0
		for due < len(retries) && retries[due].at <= now {
			due++
		}
		if due > 0 {
			batch := retries[:due:due]
			retries = retries[due:]
			for _, re := range batch {
				j, err := pick(re.t)
				if err != nil {
					return nil, err
				}
				if j == -1 {
					at := earliestReopen()
					if math.IsInf(at, 1) {
						return nil, fmt.Errorf("cluster: transaction %d has no surviving instance to fail over to", re.t.ID)
					}
					pushRetry(at, re.t, re.from)
					continue
				}
				inst := insts[j]
				inst.failoversIn++
				failovers++
				rec.Failover(now, re.t, inst.name+"<-"+insts[re.from].name)
				deliverTo(j, re.t)
			}
		}

		// Arrivals deferred while the whole fleet was ejected, then fresh
		// arrivals due at this instant.
		if len(pendingArr) > 0 && healthyCount() > 0 {
			still := pendingArr[:0]
			for i, t := range pendingArr {
				routedOK, err := routeOne(t)
				if err != nil {
					return nil, err
				}
				if !routedOK {
					still = append(still, pendingArr[i:]...)
					break
				}
			}
			pendingArr = still
		}
		for nextArr < n && order[nextArr].Arrival <= now {
			t := order[nextArr]
			nextArr++
			routedOK, err := routeOne(t)
			if err != nil {
				return nil, err
			}
			if !routedOK {
				pendingArr = append(pendingArr, t)
			}
		}

		// Instances that received work re-decide: the running transaction
		// bounces back so the next fill dispatches the highest priority,
		// exactly like the single-backend preemptive model.
		for _, inst := range insts {
			if !inst.delivered {
				continue
			}
			inst.delivered = false
			if inst.running != nil {
				rec.Preempt(now, inst.running)
				inst.queued++
				inst.sched.OnPreempt(now, inst.running)
				inst.running = nil
			}
		}
	}

	// Close out the SLO engines: final gauge publication only — the open
	// partial window is never evaluated (docs/OBSERVABILITY.md).
	if cfg.SLO != nil {
		for _, inst := range insts {
			inst.slo.Finish()
		}
	}

	var busy float64
	for _, inst := range insts {
		busy += inst.busy
	}
	summary, err := metrics.Compute(set, busy)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Summary: summary,
		Routes:  routes, Failovers: failovers, Lost: lost, Shed: shedCnt,
		Ejections: ejections, Recoveries: recoveries,
		Instances: make([]InstanceResult, len(insts)),
	}
	for i, inst := range insts {
		if inst.inj != nil {
			summary.Aborts += inst.inj.Aborts()
			summary.Restarts += inst.inj.Restarts()
			summary.Stalls += inst.inj.StallsEntered()
		}
		if inst.val != nil {
			summary.ValidateFails += inst.val.Fails()
		}
		res.Misses += inst.misses
		res.Instances[i] = InstanceResult{
			Routed: inst.routed, FailoversIn: inst.failoversIn,
			CrashLost: inst.crashLost, Completed: inst.completed,
			Misses: inst.misses, Busy: inst.busy,
		}
		if inst.slo != nil {
			res.SLO = append(res.SLO, inst.slo.State())
		}
	}
	publish(true)
	return res, nil
}
