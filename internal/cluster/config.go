// Package cluster is the fault-tolerant fleet tier of the reproduction: a
// deterministic routing layer that assigns each arriving transaction to one
// of N instances, each owning its own priority queue, scheduler, admission
// controller and fault-injection plan — with instance-level fault domains
// layered on top of the per-transaction faults of internal/fault.
//
// An instance's crash window destroys the whole instance's work: the
// in-flight transaction, everything queued in its scheduler, and everything
// backing off toward it. The router detects the crash through the same
// deterministic window schedule (a health signal that is a pure function of
// simulated time), ejects the instance from the routing set via a circuit
// breaker, and fails the lost transactions over to surviving instances
// under a per-transaction retry budget with capped exponential backoff.
// Failed-over transactions restart from scratch (a new incarnation) but
// keep their original arrival time, so tardiness accounting stays honest:
// the SLA clock never resets because the operator's backend crashed.
//
// Determinism is the same contract as everywhere else in the repository:
// every routing, ejection and failover decision is a pure function of the
// configuration, the seeds and simulated time, so a fixed-seed routed run
// produces a byte-identical decision-event stream on every replay, serial
// or parallel (docs/ROBUSTNESS.md, docs/PARALLELISM.md).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/admit"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slo"
)

// Retry is the failover budget of one cluster run: how many times a
// transaction lost to instance crashes may be re-enqueued, and how long it
// waits before each re-enqueue. The zero value selects DefaultRetry.
type Retry struct {
	// Budget caps the failovers a single transaction may consume; a
	// transaction losing its instance with an exhausted budget is
	// permanently lost (counted in Result.Lost, excluded from tardiness
	// aggregates like a shed transaction).
	Budget int `json:"budget"`
	// BackoffBase is the delay before the first failover re-enqueue; each
	// further failover of the same transaction doubles it.
	BackoffBase float64 `json:"backoff_base"`
	// BackoffCap bounds the exponential backoff (0 = uncapped).
	BackoffCap float64 `json:"backoff_cap"`
}

// DefaultRetry is the budget used when Config.Retry is the zero value.
var DefaultRetry = Retry{Budget: 3, BackoffBase: 0.25, BackoffCap: 2}

// backoff returns the re-enqueue delay after a transaction's k-th failover
// (k >= 1): BackoffBase doubled per prior failover, bounded by BackoffCap.
func (r Retry) backoff(k int) float64 {
	if r.BackoffBase == 0 || k < 1 {
		return 0
	}
	d := r.BackoffBase * math.Pow(2, float64(k-1))
	if r.BackoffCap > 0 && d > r.BackoffCap {
		d = r.BackoffCap
	}
	return d
}

// Validate rejects malformed budgets with the field-naming convention of
// fault.Plan.Validate.
func (r Retry) Validate() error {
	if r.Budget < 0 {
		return fmt.Errorf("cluster: retry budget %d must be non-negative", r.Budget)
	}
	if r.BackoffBase < 0 {
		return fmt.Errorf("cluster: retry backoff_base %v must be non-negative", r.BackoffBase)
	}
	if r.BackoffCap < 0 {
		return fmt.Errorf("cluster: retry backoff_cap %v must be non-negative (0 = uncapped)", r.BackoffCap)
	}
	if r.BackoffCap > 0 && r.BackoffCap < r.BackoffBase {
		return fmt.Errorf("cluster: retry backoff_cap %v is below backoff_base %v", r.BackoffCap, r.BackoffBase)
	}
	return nil
}

// Config configures a cluster run. Unlike sim.Config there is no valid zero
// value: Instances and NewScheduler are required.
type Config struct {
	// Instances is the fleet size N (>= 1). Each instance models one
	// single-server backend with its own queue.
	Instances int
	// Policy is the routing policy deciding which instance serves each
	// arriving or failing-over transaction. Policies may carry state (the
	// round-robin cursor), so concurrent runs must not share one; nil
	// selects a fresh round-robin.
	Policy Policy
	// NewScheduler builds one instance's scheduling policy. Called once per
	// instance (plus once more per crash recovery, on a workload with no
	// dependencies); factories must not share mutable state between calls.
	NewScheduler func() sched.Scheduler
	// NewAdmit, when non-nil, builds one instance's admission controller —
	// consulted with that instance's local state when the router places an
	// arrival there. Failover re-enqueues bypass admission: the work was
	// already accepted, and dropping it again would double-charge the
	// transaction for the operator's crash.
	NewAdmit func() admit.Controller
	// Faults holds one fault plan per instance (nil entries inject
	// nothing); its length must be zero or Instances. Crash windows in an
	// instance's plan destroy that whole instance's work — the fault-domain
	// semantics — where the single-backend simulator's crash destroys only
	// in-flight work. Flash-crowd bursts are a workload transform, not an
	// instance fault, and are rejected here.
	Faults []*fault.Plan
	// Retry is the failover budget; the zero value selects DefaultRetry.
	Retry Retry
	// NoFailover disables re-enqueueing entirely: crash-lost transactions
	// are permanently lost. This is the router-less strawman the cluster
	// benchmark measures failover against.
	NoFailover bool
	// RecoveryCooldown delays the circuit-breaker's half-open transition
	// past the crash window's end, modelling restart time.
	RecoveryCooldown float64
	// MaxSteps bounds scheduling decisions as a livelock safety net; zero
	// selects a generous default scaled by the fleet and fault plans.
	MaxSteps int
	// Sink, when non-nil, receives the routed decision-event stream —
	// the per-instance scheduling events interleaved with route/failover/
	// eject/recover — in one globally time-ordered sequence.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the run's counters (the
	// asets_sched_* and asets_fault_* families plus asets_cluster_*).
	Metrics *obs.Registry
	// SLO, when non-nil, attaches one SLO alert engine per instance (each
	// fault domain is its own alerting domain, labeled with the instance
	// index). Alert fire/resolve transitions ride the routed decision-event
	// stream in time order; per-instance gauges land in Metrics; the
	// aggregate fleet rollup is served by StatusBoard.Health. The Instance
	// field of the supplied config is ignored — the engine overrides it per
	// fault domain.
	SLO *slo.Config
	// Status, when non-nil, receives a live snapshot of the fleet at every
	// event — the seam the live server reads /healthz detail from. Nil for
	// pure simulation runs (zero overhead).
	Status *StatusBoard
	// Pace, when non-nil, is called before the engine advances to a future
	// instant — the live tier's wall-clock pacing hook. Returning an error
	// aborts the run (context cancellation).
	Pace func(next float64) error
}

// validate checks the configuration, returning the effective retry budget.
//
//lint:coldpath config validation runs once before the event loop
func (c *Config) validate() (Retry, error) {
	if c.Instances < 1 {
		return Retry{}, fmt.Errorf("cluster: instances %d must be positive", c.Instances)
	}
	if c.NewScheduler == nil {
		return Retry{}, fmt.Errorf("cluster: no scheduler factory")
	}
	if len(c.Faults) != 0 && len(c.Faults) != c.Instances {
		return Retry{}, fmt.Errorf("cluster: %d fault plans for %d instances (need none or one per instance)", len(c.Faults), c.Instances)
	}
	for i, p := range c.Faults {
		if p == nil {
			continue
		}
		if err := p.Validate(); err != nil {
			return Retry{}, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		if len(p.Bursts) > 0 {
			return Retry{}, fmt.Errorf("cluster: instance %d fault plan has flash-crowd bursts; bursts transform the shared workload, not one instance — apply them to the set before the run", i)
		}
	}
	retry := c.Retry
	if retry == (Retry{}) {
		retry = DefaultRetry
	}
	if err := retry.Validate(); err != nil {
		return Retry{}, err
	}
	if c.RecoveryCooldown < 0 {
		return Retry{}, fmt.Errorf("cluster: recovery cooldown %v must be non-negative", c.RecoveryCooldown)
	}
	if c.SLO != nil {
		if err := c.SLO.Validate(); err != nil {
			return Retry{}, fmt.Errorf("cluster: %w", err)
		}
	}
	return retry, nil
}
