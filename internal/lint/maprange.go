package lint

import (
	"go/ast"
	"go/types"
)

// MapRange returns the analyzer flagging range statements over maps in
// scheduler/simulator decision paths. Go randomizes map iteration order, so
// any decision or output derived from a map walk differs between runs unless
// the loop is order-independent (a pure max with a total tie-break, say) —
// in which case the site carries a //lint:ignore with that argument.
func MapRange() *Analyzer {
	a := &Analyzer{
		Name: "maprange",
		Doc: "flags range loops over maps in decision-path packages, where Go's " +
			"randomized iteration order can leak into scheduling decisions and " +
			"simulation results; iterate a sorted key slice instead, or justify " +
			"order-independence with //lint:ignore",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(rs.X.Pos(),
						"range over map %s iterates in randomized order inside a decision path; "+
							"iterate a sorted key slice, or justify order-independence with //lint:ignore maprange",
						types.ExprString(rs.X))
				}
				return true
			})
		}
	}
	return a
}
