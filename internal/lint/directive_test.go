package lint

import (
	"strings"
	"testing"
)

// TestFileIgnoreWithoutReason: a //lint:file-ignore missing its reason is
// inert (findings in the file survive) and is itself reported.
func TestFileIgnoreWithoutReason(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `//lint:file-ignore maprange
package a

func F(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.Analyzer == "directive" && !strings.Contains(d.Message, "file-ignore") {
			t.Errorf("directive message %q should name the file-ignore form", d.Message)
		}
	}
	if byAnalyzer["maprange"] != 1 {
		t.Errorf("maprange findings = %d, want 1 (reasonless file-ignore must not suppress)", byAnalyzer["maprange"])
	}
	if byAnalyzer["directive"] != 1 {
		t.Errorf("directive findings = %d, want 1 (missing reason must be reported)", byAnalyzer["directive"])
	}
}

// TestIgnoreMultilineStatement: a directive on the line above a statement
// wrapped over several lines must suppress findings on every line of the
// statement, not just its first.
func TestIgnoreMultilineStatement(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

type P struct {
	Deadline float64
	Slack    float64
}

// Same reports exact equality, used by a replay-divergence check where
// bit-identity is the point.
func Same(a, b P) bool {
	//lint:ignore floatcmp replay divergence check: bit-identity is the requirement
	same := a.Deadline == b.Deadline &&
		a.Slack == b.Slack
	return same
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s (directive above a multi-line statement must cover all of it)", d)
	}
}

// TestIgnoreDoesNotBlanketBlocks: a directive above an if statement covers
// the condition but must not leak into the block body.
func TestIgnoreDoesNotBlanketBlocks(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

type P struct {
	Deadline float64
	Slack    float64
}

// Check mixes a sanctioned exact comparison in an if header with an
// unsanctioned one inside the body.
func Check(a, b P) int {
	//lint:ignore floatcmp header comparison is the sanctioned one
	if a.Deadline == b.Deadline {
		if a.Slack == b.Slack {
			return 2
		}
		return 1
	}
	return 0
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	if len(diags) != 1 || diags[0].Analyzer != "floatcmp" {
		t.Fatalf("diagnostics = %v, want exactly the body's floatcmp finding to survive", diags)
	}
}

// TestWriteJSON: the machine-readable form round-trips position and message,
// and an empty diagnostic list encodes as [] (not null).
func TestWriteJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

func F(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one maprange finding", diags)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		`"file": "`,
		`"line": 4`,
		`"analyzer": "maprange"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSON output missing %q:\n%s", frag, out)
		}
	}

	sb.Reset()
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}
