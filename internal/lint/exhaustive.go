package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ExhaustiveSwitch returns the analyzer enforcing that every switch over a
// module-declared enum (a named integer type with at least two package-level
// constants, like core.Rule, core.Activation, sched.Backend or the workload
// shape enums) either handles every declared constant explicitly or carries
// a default clause that fails loudly (panic, os.Exit, log.Fatal, or an
// error construction). A silent default over a scheduling-policy enum is how
// a newly added policy variant runs with the wrong semantics instead of
// crashing in the first test.
func ExhaustiveSwitch() *Analyzer {
	a := &Analyzer{
		Name: "exhaustive-policy-switch",
		Doc: "requires switches over repo-declared enums to handle every constant " +
			"or to fail loudly in default; silent defaults misroute newly added " +
			"policy variants",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, info, sw)
				return true
			})
		}
	}
	return a
}

func checkSwitch(pass *Pass, info *types.Info, sw *ast.SwitchStmt) {
	tagType := info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return
	}
	// Only enums declared inside the module under analysis count; stdlib
	// integer types (reflect.Kind and friends) are out of scope.
	mod := pass.Pkg.Module
	if declPkg.Path() != mod && !strings.HasPrefix(declPkg.Path(), mod+"/") {
		return
	}
	consts := enumConstants(declPkg, named)
	if len(consts) < 2 {
		return
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := info.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			for _, c := range consts {
				if constant.Compare(tv.Value, token.EQL, c.Val()) {
					covered[c.Name()] = true
				}
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	typeName := named.Obj().Name()
	if defaultClause == nil {
		pass.Reportf(sw.Switch,
			"switch over %s.%s does not handle %s and has no default; handle every constant "+
				"or add a default that panics/errors", declPkg.Name(), typeName, strings.Join(missing, ", "))
		return
	}
	if !defaultFails(info, defaultClause) {
		pass.Reportf(sw.Switch,
			"switch over %s.%s does not handle %s and its default is silent; a newly added "+
				"%s value would be misrouted — handle every constant or make the default panic/error",
			declPkg.Name(), typeName, strings.Join(missing, ", "), typeName)
	}
}

// enumConstants collects the package-level constants of exactly the named
// type, in declaration-scope order (sorted names, deterministic).
func enumConstants(pkg *types.Package, t *types.Named) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), t) {
			out = append(out, c)
		}
	}
	return out
}

// defaultFails reports whether the default clause fails loudly: a panic, an
// os.Exit / log.Fatal* / runtime.Goexit call, or an error construction
// (fmt.Errorf, errors.New) anywhere in its body.
func defaultFails(info *types.Info, cc *ast.CaseClause) bool {
	failing := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin || info.Uses[fun] == nil {
						failing = true
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
					full := obj.Pkg().Path() + "." + obj.Name()
					switch full {
					case "os.Exit", "runtime.Goexit", "fmt.Errorf", "errors.New",
						"log.Fatal", "log.Fatalf", "log.Fatalln",
						"log.Panic", "log.Panicf", "log.Panicln":
						failing = true
					}
				}
			}
			return !failing
		})
		if failing {
			return true
		}
	}
	return false
}
