package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene returns the analyzer flagging goroutines launched
// without a visible join. A goroutine counts as joined when its body (for
// go func() literals) signals completion — a channel send, a close, or a
// sync.WaitGroup.Done — or when the spawning function visibly synchronizes
// with it (WaitGroup Add/Wait, a channel receive, or a select). Anything
// else is fire-and-forget: it outlives shutdown, leaks under -race testing,
// and can write to structures the rest of the program has already torn
// down.
func GoroutineHygiene() *Analyzer {
	a := &Analyzer{
		Name: "goroutine-hygiene",
		Doc: "flags go statements with no visible completion signal (WaitGroup, " +
			"channel send/close in the goroutine, or a join in the spawning " +
			"function); unjoined goroutines break clean shutdown",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			// Walk function by function so each go statement can consult its
			// enclosing body.
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGoStmts(pass, info, fd.Body)
			}
		}
	}
	return a
}

// checkGoStmts reports every unjoined go statement inside body (including
// bodies of nested function literals, each judged against its own enclosing
// body).
func checkGoStmts(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			if hasCompletionSignal(info, lit.Body) {
				return true
			}
		}
		if hasJoinEvidence(info, body, gs) {
			return true
		}
		pass.Reportf(gs.Pos(),
			"goroutine has no visible completion signal (sync.WaitGroup, channel send/close, "+
				"or a join in the spawning function); unjoined goroutines outlive shutdown "+
				"— join it or justify with //lint:ignore goroutine-hygiene")
		return true
	})
}

// hasCompletionSignal reports whether the goroutine body itself announces
// completion: a channel send, a close(...), or a WaitGroup Done.
func hasCompletionSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
					found = true // builtin close, not a shadowing local
				}
			}
			if isWaitGroupCall(info, n, "Done") {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasJoinEvidence reports whether the function spawning the goroutine
// visibly synchronizes with goroutines: a WaitGroup Add/Wait, a channel
// receive, or a select statement.
func hasJoinEvidence(info *types.Info, body *ast.BlockStmt, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if n == gs {
				return false // do not credit the goroutine's own body
			}
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupCall(info, n, "Wait") || isWaitGroupCall(info, n, "Add") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is method (e.g. "Done") on a
// sync.WaitGroup value or pointer.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
