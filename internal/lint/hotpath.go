package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/callgraph"
)

// Hot-path annotations. ROADMAP item 2 demands a zero-allocation decision
// loop before scaling runs 100×; these markers let the code declare where
// that loop is, and the hotpath-alloc analyzer enforces it transitively:
//
//	//lint:hotpath   (in a function's doc comment) — the function and
//	                 everything reachable from it in the call graph is
//	                 checked for allocation idioms
//	//lint:coldpath  — reachability stops here: the function runs off the
//	                 event path by design (end-of-run aggregation, error
//	                 formatting) and its callees are not checked
const (
	hotpathMarker  = "lint:hotpath"
	coldpathMarker = "lint:coldpath"
)

// HotPathAlloc returns the whole-program analyzer that flags allocation
// idioms in every function reachable from a //lint:hotpath root. It is the
// machine check behind ROADMAP item 2: the BENCH_span measurements put event
// overhead at +92% (observer on) largely from per-event allocation, and a
// review-time promise not to allocate does not survive refactors — a
// call-graph reachability check does.
func HotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpath-alloc",
		Doc: "flags allocation idioms (escaping composite literals, interface boxing, " +
			"fmt formatting, string concatenation/conversion, closures, un-presized " +
			"append, slice/map literals) in every function reachable in the call " +
			"graph from a //lint:hotpath root; //lint:coldpath prunes reachability " +
			"where a callee is off the event path by design",
	}
	a.RunModule = func(p *ModulePass) {
		units := make([]*callgraph.Unit, 0, len(p.Pkgs))
		for _, pkg := range p.Pkgs {
			units = append(units, &callgraph.Unit{
				Path: pkg.Path, Files: pkg.Files, Types: pkg.Types, Info: pkg.Info,
			})
		}
		g := callgraph.Build(units)
		var roots []*types.Func
		skip := map[*types.Func]bool{}
		for _, fn := range g.Funcs() {
			switch funcMarker(g.Node(fn).Decl) {
			case hotpathMarker:
				roots = append(roots, fn)
			case coldpathMarker:
				skip[fn] = true
			}
		}
		if len(roots) == 0 {
			return
		}
		reach := g.Reachable(roots, skip)
		for _, fn := range g.Funcs() {
			root, ok := reach[fn]
			if !ok {
				continue
			}
			checkHotFunc(p, g.Node(fn), root)
		}
	}
	return a
}

// funcMarker returns the hotpath or coldpath marker found in decl's doc
// comment, or "".
func funcMarker(decl *ast.FuncDecl) string {
	if decl.Doc == nil {
		return ""
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for _, m := range []string{hotpathMarker, coldpathMarker} {
			if text == m || strings.HasPrefix(text, m+" ") {
				return m
			}
		}
	}
	return ""
}

// checkHotFunc reports every allocation idiom in one hot-path function.
func checkHotFunc(p *ModulePass, node *callgraph.Node, root *types.Func) {
	info := node.Unit.Info
	rootStr := callgraph.FuncString(root)
	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, rootStr)
		p.Reportf(pos, format+" on the hot path (root %s)", args...)
	}

	litSpans := [][2]token.Pos{}
	ast.Inspect(node.Decl, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			litSpans = append(litSpans, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	presized := presizedSlices(info, node.Decl)
	exempt := panicArgSpans(info, node.Decl)
	sig := node.Func.Type().(*types.Signature)

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		if n != nil && inAnySpan(n.Pos(), exempt) {
			// Formatting a panic message is death-path work: the run is
			// already over, so allocation there is not a hot-path cost.
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure value allocates")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) && info.Types[n].Value == nil {
				report(n.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.TokPos, "string concatenation allocates")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if boxes(info, info.TypeOf(n.Lhs[i]), n.Rhs[i]) {
						report(n.Rhs[i].Pos(), "implicit interface conversion boxes %s",
							types.ExprString(n.Rhs[i]))
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && len(n.Names) == len(n.Values) {
				for i := range n.Values {
					if boxes(info, info.TypeOf(n.Type), n.Values[i]) {
						report(n.Values[i].Pos(), "implicit interface conversion boxes %s",
							types.ExprString(n.Values[i]))
					}
				}
			}
		case *ast.ReturnStmt:
			if inAnySpan(n.Pos(), litSpans) {
				return true // a literal's results are not this function's
			}
			if len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					if boxes(info, sig.Results().At(i).Type(), res) {
						report(res.Pos(), "implicit interface conversion boxes %s",
							types.ExprString(res))
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(info, n, presized, report)
		}
		return true
	})
}

// checkHotCall handles the call-shaped idioms: allocating conversions,
// un-presized append, fmt formatting, and interface boxing of arguments.
func checkHotCall(info *types.Info, call *ast.CallExpr, presized map[types.Object]bool, report func(token.Pos, string, ...any)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			switch {
			case isStringType(to) && isByteOrRuneSlice(from):
				report(call.Pos(), "string conversion from a byte/rune slice copies and allocates")
			case isByteOrRuneSlice(to) && isStringType(from):
				report(call.Pos(), "byte/rune slice conversion from a string copies and allocates")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				checkAppend(info, call, presized, report)
			}
			return
		}
	}
	if path, name, ok := pkgQualifiedCall(info, call); ok && path == "fmt" {
		report(call.Pos(), "fmt.%s formats and allocates", name)
		return // argument boxing is subsumed by the formatting report
	}
	funT := info.TypeOf(call.Fun)
	if funT == nil {
		return
	}
	sig, ok := funT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // s... passes the slice through; no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if boxes(info, paramT, arg) {
			report(arg.Pos(), "passing %s boxes it into an interface parameter",
				types.ExprString(arg))
		}
	}
}

// checkAppend flags append calls whose destination has no visible presized
// capacity: a 3-arg make or a [:0] reslice of an existing buffer.
func checkAppend(info *types.Info, call *ast.CallExpr, presized map[types.Object]bool, report func(token.Pos, string, ...any)) {
	base := ast.Unparen(call.Args[0])
	switch b := base.(type) {
	case *ast.Ident:
		if presized[objectOf(info, b)] {
			return
		}
	case *ast.SliceExpr:
		if isZeroReslice(b) {
			return
		}
	}
	report(call.Pos(), "append to %s without presized capacity may grow and reallocate",
		types.ExprString(call.Args[0]))
}

// presizedSlices collects the local slice variables of decl that were given
// explicit capacity — make([]T, n, c) or a buf[:0] reslice — and may
// therefore be appended to without reallocation.
func presizedSlices(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(decl, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := objectOf(info, id)
			if obj == nil {
				continue
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				if bid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[bid].(*types.Builtin); ok && b.Name() == "make" && len(r.Args) == 3 {
						out[obj] = true
					}
				}
			case *ast.SliceExpr:
				if isZeroReslice(r) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// panicArgSpans collects the source spans of every argument to the builtin
// panic inside decl. Allocations there format a crash message for a run that
// is already dead, so the hot-path check exempts them.
func panicArgSpans(info *types.Info, decl *ast.FuncDecl) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			spans = append(spans, [2]token.Pos{arg.Pos(), arg.End()})
		}
		return true
	})
	return spans
}

// objectOf resolves an identifier whether it defines or uses its object.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isZeroReslice matches x[:0] (and x[0:0]).
func isZeroReslice(se *ast.SliceExpr) bool {
	if se.Slice3 || se.High == nil {
		return false
	}
	hi, ok := se.High.(*ast.BasicLit)
	if !ok || hi.Value != "0" {
		return false
	}
	if se.Low == nil {
		return true
	}
	lo, ok := se.Low.(*ast.BasicLit)
	return ok && lo.Value == "0"
}

// boxes reports whether assigning src to a destination of type dst converts
// a concrete, non-pointer-shaped value to an interface — which copies the
// value to the heap. Pointer-shaped values (pointers, maps, channels,
// functions) fit the interface data word directly; constants are excluded
// as noise (small values are interned by the runtime).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	t := info.TypeOf(src)
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return false // interface-to-interface carries the existing box
	}
	if tv, ok := info.Types[src]; ok && tv.Value != nil {
		return false
	}
	return !pointerShaped(t)
}

// pointerShaped reports whether values of t occupy exactly one pointer word,
// so interface conversion stores them inline without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pkgQualifiedCall matches calls of the form pkg.Fn(...) and returns the
// package's import path and the function name.
func pkgQualifiedCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	x, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
