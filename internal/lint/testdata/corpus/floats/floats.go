// Package floats seeds exact float64 comparison violations for the
// floatcmp analyzer's self-test.
package floats

type txn struct {
	Deadline float64
	Slack    float64
	Weight   float64
}

// MissedExactly compares a finish instant against a deadline exactly:
// flagged.
func MissedExactly(finish, deadline float64) bool {
	return finish == deadline // want floatcmp
}

// SameSlack compares slacks of two different values exactly: flagged.
func SameSlack(a, b txn) bool {
	return a.Slack != b.Slack // want floatcmp
}

// SameWeight is legal: weight is not a simulated-time quantity.
func SameWeight(a, b txn) bool { return a.Weight == b.Weight }

// Less is legal: exact equality inside a comparator closure is the
// deliberate tie-breaking idiom.
func Less(xs []txn) func(i, j int) bool {
	return func(i, j int) bool {
		if xs[i].Deadline != xs[j].Deadline {
			return xs[i].Deadline < xs[j].Deadline
		}
		return i < j
	}
}
