// Package enums seeds non-exhaustive enum switches for the
// exhaustive-policy-switch analyzer's self-test.
package enums

import "fmt"

// Policy is a module-declared scheduling-policy enum.
type Policy int

const (
	// PolicyEDF is earliest deadline first.
	PolicyEDF Policy = iota
	// PolicyHDF is highest density first.
	PolicyHDF
	// PolicySRPT is shortest remaining processing time.
	PolicySRPT
)

// RouteSilent misses PolicySRPT behind a silent default: flagged.
func RouteSilent(p Policy) string {
	switch p { // want exhaustive-policy-switch
	case PolicyEDF:
		return "edf"
	case PolicyHDF:
		return "hdf"
	default:
		return "unknown"
	}
}

// RouteMissing misses PolicySRPT with no default at all: flagged.
func RouteMissing(p Policy) string {
	s := ""
	switch p { // want exhaustive-policy-switch
	case PolicyEDF:
		s = "edf"
	case PolicyHDF:
		s = "hdf"
	}
	return s
}

// RouteExhaustive handles every constant: legal.
func RouteExhaustive(p Policy) string {
	switch p {
	case PolicyEDF:
		return "edf"
	case PolicyHDF:
		return "hdf"
	case PolicySRPT:
		return "srpt"
	}
	return ""
}

// RouteFailingDefault fails loudly on unknown values: legal.
func RouteFailingDefault(p Policy) string {
	switch p {
	case PolicyEDF:
		return "edf"
	default:
		panic(fmt.Sprintf("unknown policy %d", p))
	}
}

// RouteErroringDefault constructs an error in default: legal.
func RouteErroringDefault(p Policy) (string, error) {
	switch p {
	case PolicyEDF:
		return "edf", nil
	default:
		return "", fmt.Errorf("unknown policy %d", p)
	}
}

// EventKind is a module-declared decision-event-kind enum, mirroring the
// span builder's event-handling switches.
type EventKind int

const (
	// EventArrival is a transaction arrival.
	EventArrival EventKind = iota
	// EventDispatch is a dispatch onto a server.
	EventDispatch
	// EventCompletion is a completion.
	EventCompletion
	// EventAbort is a keyed or crash abort.
	EventAbort
)

// SegmentSilent misses EventAbort behind a silent default: flagged.
func SegmentSilent(k EventKind) string {
	switch k { // want exhaustive-policy-switch
	case EventArrival:
		return "queued"
	case EventDispatch:
		return "running"
	default:
		return "unknown"
	}
}

// SegmentMissing misses EventCompletion with no default at all: flagged.
func SegmentMissing(k EventKind) string {
	s := ""
	switch k { // want exhaustive-policy-switch
	case EventArrival:
		s = "queued"
	case EventDispatch:
		s = "running"
	case EventAbort:
		s = "backoff"
	}
	return s
}

// SegmentExhaustive handles every constant: legal.
func SegmentExhaustive(k EventKind) string {
	switch k {
	case EventArrival:
		return "queued"
	case EventDispatch:
		return "running"
	case EventCompletion:
		return "done"
	case EventAbort:
		return "backoff"
	}
	return ""
}

// SegmentPanicDefault fails loudly on unknown kinds, the span builder's
// convention: legal.
func SegmentPanicDefault(k EventKind) string {
	switch k {
	case EventArrival:
		return "queued"
	default:
		panic(fmt.Sprintf("unhandled event kind %d", k))
	}
}
