// Package enums seeds non-exhaustive enum switches for the
// exhaustive-policy-switch analyzer's self-test.
package enums

import "fmt"

// Policy is a module-declared scheduling-policy enum.
type Policy int

const (
	// PolicyEDF is earliest deadline first.
	PolicyEDF Policy = iota
	// PolicyHDF is highest density first.
	PolicyHDF
	// PolicySRPT is shortest remaining processing time.
	PolicySRPT
)

// RouteSilent misses PolicySRPT behind a silent default: flagged.
func RouteSilent(p Policy) string {
	switch p { // want exhaustive-policy-switch
	case PolicyEDF:
		return "edf"
	case PolicyHDF:
		return "hdf"
	default:
		return "unknown"
	}
}

// RouteMissing misses PolicySRPT with no default at all: flagged.
func RouteMissing(p Policy) string {
	s := ""
	switch p { // want exhaustive-policy-switch
	case PolicyEDF:
		s = "edf"
	case PolicyHDF:
		s = "hdf"
	}
	return s
}

// RouteExhaustive handles every constant: legal.
func RouteExhaustive(p Policy) string {
	switch p {
	case PolicyEDF:
		return "edf"
	case PolicyHDF:
		return "hdf"
	case PolicySRPT:
		return "srpt"
	}
	return ""
}

// RouteFailingDefault fails loudly on unknown values: legal.
func RouteFailingDefault(p Policy) string {
	switch p {
	case PolicyEDF:
		return "edf"
	default:
		panic(fmt.Sprintf("unknown policy %d", p))
	}
}

// RouteErroringDefault constructs an error in default: legal.
func RouteErroringDefault(p Policy) (string, error) {
	switch p {
	case PolicyEDF:
		return "edf", nil
	default:
		return "", fmt.Errorf("unknown policy %d", p)
	}
}
