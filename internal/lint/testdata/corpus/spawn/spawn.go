// Package spawn seeds unjoined-goroutine violations for the
// goroutine-hygiene analyzer's self-test.
package spawn

import "sync"

// FireAndForget launches a goroutine nothing ever joins: flagged.
func FireAndForget(f func()) {
	go f() // want goroutine-hygiene
}

// LeakyCounter mutates shared state from an unjoined goroutine: flagged.
func LeakyCounter(n *int) {
	go func() { // want goroutine-hygiene
		*n++
	}()
}

// Joined synchronizes through a WaitGroup: legal.
func Joined(fs []func()) {
	var wg sync.WaitGroup
	for _, f := range fs {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// Signalled closes a channel the caller can wait on: legal.
func Signalled(f func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	return done
}

// Piped announces completion by sending the result: legal.
func Piped(f func() int) <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- f()
	}()
	return out
}
