// Package maporder seeds map-iteration-order violations for the maprange
// analyzer's self-test.
package maporder

// SumWeights happens to be order-independent, but the analyzer cannot prove
// that; decision-path code must justify such loops with //lint:ignore.
func SumWeights(w map[int]float64) float64 {
	var s float64
	for _, v := range w { // want maprange
		s += v
	}
	return s
}

// FirstKey genuinely depends on iteration order: flagged.
func FirstKey(m map[string]int) string {
	for k := range m { // want maprange
		return k
	}
	return ""
}

// CountSlice ranges over a slice: legal.
func CountSlice(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
