// Package nondet seeds wall-clock and unseeded-randomness violations for
// the nondeterminism analyzer's self-test.
package nondet

import (
	"math/rand" // want nondeterminism
	"time"
)

// Tick reads the wall clock: flagged.
func Tick() int64 {
	return time.Now().UnixNano() // want nondeterminism
}

// Jitter sleeps on the wall clock: flagged on the sleep.
func Jitter() float64 {
	time.Sleep(time.Millisecond) // want nondeterminism
	return rand.Float64()
}

// Countdown leaks wall time through a timer: flagged.
func Countdown() {
	<-time.After(time.Second) // want nondeterminism
}

// Elapsed is legal: time.Duration is pure data, no clock is observed.
func Elapsed(d time.Duration) float64 { return d.Seconds() }
