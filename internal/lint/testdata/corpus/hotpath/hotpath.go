// Package hotpath seeds the hotpath-alloc corpus: Run is the annotated
// root, helpers are reached statically and through interface dispatch, and
// finish is pruned with //lint:coldpath. Lines marked want must be flagged;
// everything else must stay silent.
package hotpath

import "fmt"

// step is the dispatch surface: implementations must be reached through the
// call graph's interface fan-out, not just static calls.
type step interface {
	apply(x int) int
}

// Run is the decision loop under test.
//
//lint:hotpath
func Run(ss []step, names []string, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		for _, s := range ss {
			total = s.apply(total)
		}
	}
	total += work(names, total)
	report(total)
	_ = suppressed(total)
	guard(total)
	finish(total)
	return total
}

type point struct{ x int }

// boxer reaches the hot path only through interface dispatch on step.
type boxer struct{ scale int }

func (b boxer) apply(x int) int {
	vals := []int{x, b.scale} // want hotpath-alloc
	m := map[int]int{x: 1}    // want hotpath-alloc
	p := &point{x: x}         // want hotpath-alloc
	return vals[0] + m[x] + p.x
}

// shifter is the allocation-free implementation; it must produce nothing.
type shifter struct{ by int }

func (s shifter) apply(x int) int { return x + s.by }

// work is reached statically and seeds the remaining idioms.
func work(names []string, x int) int {
	joined := ""
	for _, n := range names {
		joined += n // want hotpath-alloc
	}
	b := []byte(joined)          // want hotpath-alloc
	f := func() int { return x } // want hotpath-alloc
	sink(x)                      // want hotpath-alloc
	var xs []int
	xs = append(xs, x) // want hotpath-alloc
	ys := make([]int, 0, 8)
	ys = append(ys, x) // presized: no finding
	return len(b) + f() + len(xs) + len(ys)
}

// sink's any parameter is what forces the boxing at work's call site.
func sink(v any) { _ = v }

// report is reached statically from Run.
func report(total int) {
	msg := fmt.Sprintf("total=%d", total) // want hotpath-alloc
	_ = msg
}

// suppressed shows a justified suppression: flagged code, silenced with a
// reasoned directive, asserted silent by the absence of a want marker.
func suppressed(x int) string {
	//lint:ignore hotpath-alloc error-path formatting, runs at most once per run
	s := fmt.Sprintf("x=%d", x)
	return s
}

// guard shows the panic exemption: formatting a crash message is death-path
// work, not a hot-path cost, so the Sprintf below must stay silent.
func guard(total int) {
	if total < 0 {
		panic(fmt.Sprintf("hotpath: negative total %d", total))
	}
}

// finish is the end-of-run aggregation: reachability must stop here.
//
//lint:coldpath
func finish(total int) {
	fmt.Println("done", total)
}

// Unreachable is never called from the root; its allocations are off-path.
func Unreachable() string {
	return fmt.Sprintf("%d", 42)
}
