// Package atomicfield seeds the atomiccheck corpus: any variable whose
// address reaches a sync/atomic function must be accessed atomically
// everywhere. Lines marked want must be flagged; everything else must stay
// silent.
package atomicfield

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
}

// bump and load are the sanctioned atomic accesses.
func bump(s *stats) {
	atomic.AddUint64(&s.hits, 1)
}

func load(s *stats) uint64 {
	return atomic.LoadUint64(&s.hits)
}

// racyRead mixes a plain read in.
func racyRead(s *stats) uint64 {
	return s.hits // want atomiccheck
}

// racyWrite mixes a plain write in.
func racyWrite(s *stats) {
	s.hits = 0 // want atomiccheck
}

// plainField is never touched atomically: silent.
func plainField(s *stats) uint64 {
	return s.misses
}

// construct writes before publication: exempt.
func construct() *stats {
	s := &stats{}
	s.hits = 1
	return s
}

var total uint64

func addTotal() {
	atomic.AddUint64(&total, 1)
}

// racyTotal reads the package-level counter plainly.
func racyTotal() uint64 {
	return total // want atomiccheck
}

// suppressedRead shows a justified suppression.
func suppressedRead(s *stats) uint64 {
	//lint:ignore atomiccheck snapshot after all writers joined; no concurrent access
	return s.hits
}
