// Package lockedstate seeds the lockguard corpus: fields annotated
// "guarded by mu" must only be touched with the right mutex held. Lines
// marked want must be flagged; everything else must stay silent.
package lockedstate

import "sync"

type counter struct {
	mu sync.Mutex
	n  int    // guarded by mu
	s  string // unguarded on purpose
}

// locked brackets the access correctly.
func locked(c *counter) int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// deferred uses the defer idiom: held to function end.
func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// bare reads without any lock.
func bare(c *counter) int {
	return c.n // want lockguard
}

// branchLeak locks only inside the conditional; the lock must not be
// considered held after the block.
func branchLeak(c *counter, b bool) {
	if b {
		c.mu.Lock()
		c.n = 1
		c.mu.Unlock()
	}
	c.n = 2 // want lockguard
}

// unlockedTail releases and then keeps touching the field.
func unlockedTail(c *counter) int {
	c.mu.Lock()
	c.n = 3
	c.mu.Unlock()
	return c.n // want lockguard
}

// construct initializes an unpublished object: exempt.
func construct() *counter {
	c := &counter{}
	c.n = 41
	c.n++
	return c
}

// escape returns a closure; the closure runs later, outside the bracket
// taken here, so its body starts with no locks held.
func escape(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 8
	return func() {
		c.n = 9 // want lockguard
	}
}

// unguarded touches the field with no annotation: silent.
func unguarded(c *counter) string {
	return c.s
}

type pair struct {
	mu    sync.Mutex
	other sync.Mutex
	a     int // guarded by mu
}

// wrongMutex holds a mutex — just not the one the annotation names.
func wrongMutex(p *pair) {
	p.other.Lock()
	p.a = 1 // want lockguard
	p.other.Unlock()
}

// methodReceiver exercises the receiver (non-local) base.
func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n-- // want lockguard
}
