// Package imports exercises cross-package enum resolution: the switch tag's
// type is declared in a different package of the same module.
package imports

import "corpus/enums"

// Route misses two constants of an enum declared elsewhere in the module:
// flagged.
func Route(p enums.Policy) string {
	switch p { // want exhaustive-policy-switch
	case enums.PolicyEDF:
		return "edf"
	}
	return ""
}
