// Package suppress exercises the //lint:ignore directive: every violation
// below carries a justified suppression, so the analyzers must stay silent.
package suppress

// MaxRatio iterates a map but is a pure max under a total order.
func MaxRatio(m map[int]float64) float64 {
	best := -1.0
	//lint:ignore maprange pure max; every iteration order yields the same result
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// ExactDeadline documents an intentional exact comparison inline.
func ExactDeadline(deadline, cached float64) bool {
	return deadline == cached //lint:ignore floatcmp cache-coherence check must be exact
}
