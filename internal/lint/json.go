package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable form of one finding. The field set
// matches what CI consumers (the GitHub Actions problem matcher, review
// bots) need to place an annotation: file, position, analyzer, message.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diags to w as an indented JSON array, in the same total
// order Run returns them, so the output is byte-stable across runs. An empty
// diagnostic list encodes as [] rather than null.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
