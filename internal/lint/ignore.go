package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives, modeled on staticcheck's:
//
//	//lint:ignore analyzer1[,analyzer2] reason       one line
//	//lint:file-ignore analyzer1[,analyzer2] reason  whole file
//
// A line directive suppresses findings on its own line, on the line
// immediately below it (so it can sit at the end of the offending line or
// alone just above it), and — when a statement begins on one of those
// lines — across the statement's remaining lines, so a directive above a
// call or assignment wrapped over several lines attaches to the whole
// statement. Compound statements (if, for, switch, select, func) are covered
// only up to their opening brace: a directive must never silently blanket an
// entire block body. The reason is mandatory: suppressions without a
// recorded justification defeat the point of a determinism policy.

const (
	ignorePrefix     = "lint:ignore "
	fileIgnorePrefix = "lint:file-ignore "
)

// directive is one parsed suppression.
type directive struct {
	analyzers []string
	file      string
	line      int  // line of the comment
	wholeFile bool // //lint:file-ignore
	malformed string
	pos       token.Pos
}

// parseDirectives extracts every lint: directive from the package's
// comments.
func parseDirectives(fset *token.FileSet, pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var rest string
				var wholeFile bool
				switch {
				case strings.HasPrefix(text, strings.TrimSpace(ignorePrefix)):
					rest = strings.TrimPrefix(text, strings.TrimSpace(ignorePrefix))
				case strings.HasPrefix(text, strings.TrimSpace(fileIgnorePrefix)):
					rest = strings.TrimPrefix(text, strings.TrimSpace(fileIgnorePrefix))
					wholeFile = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{
					file:      pos.Filename,
					line:      pos.Line,
					wholeFile: wholeFile,
					pos:       c.Pos(),
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					kind := "ignore"
					if wholeFile {
						kind = "file-ignore"
					}
					d.malformed = "directive needs an analyzer list and a reason: //lint:" +
						kind + " <analyzer>[,<analyzer>] <reason>"
				} else {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.analyzers = append(d.analyzers, name)
						}
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// checkDirectives reports malformed suppression directives as diagnostics
// of the pseudo-analyzer "directive".
func checkDirectives(fset *token.FileSet, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, d := range parseDirectives(fset, pkg) {
		if d.malformed != "" {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(d.pos),
				Analyzer: "directive",
				Message:  d.malformed,
			})
		}
	}
	return diags
}

// lineSpan is an inclusive range of source lines in one file.
type lineSpan struct {
	start, end int
}

// stmtSpans records, per file, the line extent of every construct a line
// directive can attach to. Simple statements and value specs span to their
// end; compound statements and function declarations contribute only their
// header (up to the opening brace), so a directive above an if or for covers
// the condition but never the block body.
func stmtSpans(fset *token.FileSet, pkg *Package) map[string][]lineSpan {
	out := map[string][]lineSpan{}
	for _, f := range pkg.Files {
		file := fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			var end token.Pos
			switch n := n.(type) {
			case *ast.IfStmt:
				end = n.Body.Lbrace
			case *ast.ForStmt:
				end = n.Body.Lbrace
			case *ast.RangeStmt:
				end = n.Body.Lbrace
			case *ast.SwitchStmt:
				end = n.Body.Lbrace
			case *ast.TypeSwitchStmt:
				end = n.Body.Lbrace
			case *ast.SelectStmt:
				end = n.Body.Lbrace
			case *ast.FuncDecl:
				if n.Body != nil {
					end = n.Body.Lbrace
				} else {
					end = n.End()
				}
			case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.GoStmt,
				*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.ValueSpec,
				*ast.Field:
				end = n.End()
			default:
				return true
			}
			out[file] = append(out[file], lineSpan{
				start: fset.Position(n.Pos()).Line,
				end:   fset.Position(end).Line,
			})
			return true
		})
	}
	return out
}

// filterIgnored removes diagnostics covered by a well-formed directive.
func filterIgnored(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	perLine := map[lineKey]map[string]bool{}
	perFile := map[string]map[string]bool{}
	for _, pkg := range pkgs {
		spans := stmtSpans(fset, pkg)
		for _, d := range parseDirectives(fset, pkg) {
			if d.malformed != "" {
				continue
			}
			if d.wholeFile {
				if perFile[d.file] == nil {
					perFile[d.file] = map[string]bool{}
				}
				for _, a := range d.analyzers {
					perFile[d.file][a] = true
				}
				continue
			}
			lo, hi := d.line, d.line+1
			for _, sp := range spans[d.file] {
				if (sp.start == d.line || sp.start == d.line+1) && sp.end > hi {
					hi = sp.end
				}
			}
			for line := lo; line <= hi; line++ {
				k := lineKey{d.file, line}
				if perLine[k] == nil {
					perLine[k] = map[string]bool{}
				}
				for _, a := range d.analyzers {
					perLine[k][a] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if perFile[d.Pos.Filename][d.Analyzer] {
			continue
		}
		if perLine[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
