package lint

import (
	"go/token"
	"strings"
)

// Suppression directives, modeled on staticcheck's:
//
//	//lint:ignore analyzer1[,analyzer2] reason       one line
//	//lint:file-ignore analyzer1[,analyzer2] reason  whole file
//
// A line directive suppresses findings on its own line and on the line
// immediately below it (so it can sit at the end of the offending line or
// alone just above it). The reason is mandatory: suppressions without a
// recorded justification defeat the point of a determinism policy.

const (
	ignorePrefix     = "lint:ignore "
	fileIgnorePrefix = "lint:file-ignore "
)

// directive is one parsed suppression.
type directive struct {
	analyzers map[string]bool
	file      string
	line      int  // line of the comment
	wholeFile bool // //lint:file-ignore
	malformed string
	pos       token.Pos
}

// parseDirectives extracts every lint: directive from the package's
// comments.
func parseDirectives(fset *token.FileSet, pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var rest string
				var wholeFile bool
				switch {
				case strings.HasPrefix(text, strings.TrimSpace(ignorePrefix)):
					rest = strings.TrimPrefix(text, strings.TrimSpace(ignorePrefix))
				case strings.HasPrefix(text, strings.TrimSpace(fileIgnorePrefix)):
					rest = strings.TrimPrefix(text, strings.TrimSpace(fileIgnorePrefix))
					wholeFile = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{
					analyzers: map[string]bool{},
					file:      pos.Filename,
					line:      pos.Line,
					wholeFile: wholeFile,
					pos:       c.Pos(),
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					d.malformed = "directive needs an analyzer list and a reason: //lint:ignore <analyzer>[,<analyzer>] <reason>"
				} else {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.analyzers[name] = true
						}
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// checkDirectives reports malformed suppression directives as diagnostics
// of the pseudo-analyzer "directive".
func checkDirectives(fset *token.FileSet, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, d := range parseDirectives(fset, pkg) {
		if d.malformed != "" {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(d.pos),
				Analyzer: "directive",
				Message:  d.malformed,
			})
		}
	}
	return diags
}

// filterIgnored removes diagnostics covered by a well-formed directive.
func filterIgnored(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	perLine := map[lineKey]map[string]bool{}
	perFile := map[string]map[string]bool{}
	for _, pkg := range pkgs {
		for _, d := range parseDirectives(fset, pkg) {
			if d.malformed != "" {
				continue
			}
			if d.wholeFile {
				if perFile[d.file] == nil {
					perFile[d.file] = map[string]bool{}
				}
				for a := range d.analyzers {
					perFile[d.file][a] = true
				}
				continue
			}
			for _, line := range []int{d.line, d.line + 1} {
				k := lineKey{d.file, line}
				if perLine[k] == nil {
					perLine[k] = map[string]bool{}
				}
				for a := range d.analyzers {
					perLine[k][a] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if perFile[d.Pos.Filename][d.Analyzer] {
			continue
		}
		if perLine[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
