package lint

import (
	"go/types"
	"strconv"
)

// bannedTimeFuncs are the wall-clock reads and sleeps that make a
// simulation run irreproducible. Pure data types (time.Duration, time.Time
// as a value) stay legal; only the functions that observe or wait on the
// host clock are banned.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// bannedImports maps an import path to the reason simulation code must not
// use it.
var bannedImports = map[string]string{
	"math/rand":    "unseeded/global state and unstable across Go releases; use the seeded repro/internal/rng",
	"math/rand/v2": "unstable across Go releases; use the seeded repro/internal/rng",
	"crypto/rand":  "nondeterministic entropy; use the seeded repro/internal/rng",
}

// Nondeterminism returns the analyzer banning wall-clock reads, wall-clock
// sleeps and unseeded randomness in simulation and decision packages. The
// discrete-event simulator owns time; any host-clock read in those packages
// silently breaks the bit-for-bit reproducibility the evaluation rests on.
func Nondeterminism() *Analyzer {
	a := &Analyzer{
		Name: "nondeterminism",
		Doc: "bans time.Now/Sleep/After-style wall-clock access and math/rand-style " +
			"unseeded randomness inside simulation and scheduling-decision packages; " +
			"simulated time and repro/internal/rng are the only legal sources",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := bannedImports[path]; bad {
					pass.Reportf(imp.Pos(), "import of %s in a determinism-scoped package: %s", path, why)
				}
			}
		}
		//lint:ignore maprange findings are sorted into a total order by the engine before output
		for id, obj := range pass.Pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				continue
			}
			if fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s reads or waits on the wall clock inside a determinism-scoped package; "+
						"use simulated event time (or inject a Clock seam as internal/executor does)", fn.Name())
			}
		}
	}
	return a
}
