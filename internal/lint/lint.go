// Package lint is a from-scratch static-analysis engine for this
// repository, built only on the standard library's go/ast, go/parser,
// go/types and go/token packages (no golang.org/x/tools dependency, keeping
// the repo's stdlib-only promise).
//
// The engine exists to *enforce* the determinism policy the simulator's
// correctness rests on: the paper's evaluation (Section IV) depends on
// bit-for-bit reproducible discrete-event runs, which is why the repo ships
// its own seeded RNG (internal/rng) instead of math/rand. Reproducibility
// claims are only as strong as their weakest wall-clock read or map
// iteration, so every analyzer here targets a concrete way nondeterminism or
// ordering bugs have crept (or could creep) into scheduling code:
//
//	nondeterminism            wall-clock and unseeded-randomness calls in
//	                          simulation/decision packages
//	maprange                  range over a map in a scheduler/simulator
//	                          decision path
//	floatcmp                  exact ==/!= on float64 deadlines and slacks
//	goroutine-hygiene         goroutines launched without a visible join
//	exhaustive-policy-switch  switches over repo enums that silently ignore
//	                          constants
//	hotpath-alloc             allocation idioms anywhere reachable in the
//	                          call graph from a //lint:hotpath root
//	                          (whole-program; internal/lint/callgraph)
//	lockguard                 `// guarded by <mu>` fields accessed without
//	                          the mutex held
//	atomiccheck               plain access to variables elsewhere accessed
//	                          through sync/atomic (whole-program)
//
// Findings can be suppressed per line with a justified directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed at the end of the offending line or on the line directly above it,
// or per file with //lint:file-ignore. A directive without a reason is
// itself reported. docs/DETERMINISM.md states the policy; cmd/asetslint is
// the command-line driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a human-readable message. The driver prints it as
// "file:line:col: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the driver's output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run is invoked once per in-scope package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description shown by asetslint -list.
	Doc string
	// Include restricts the analyzer to packages whose import path contains
	// at least one of these substrings. Empty means every package.
	Include []string
	// Exclude skips packages whose import path contains any of these
	// substrings, after Include matching.
	Exclude []string
	// Run inspects one package. Exactly one of Run and RunModule is set.
	Run func(*Pass)
	// RunModule inspects the whole module at once. Whole-program analyzers
	// (hotpath-alloc's call-graph reachability, atomiccheck's cross-package
	// field census) set this instead of Run; Include/Exclude do not apply —
	// such analyzers are driven by source annotations, not path scopes.
	RunModule func(*ModulePass)
}

// applies reports whether the analyzer runs on the package with the given
// import path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Include) > 0 {
		ok := false
		for _, frag := range a.Include {
			if strings.Contains(pkgPath, frag) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, frag := range a.Exclude {
		if strings.Contains(pkgPath, frag) {
			return false
		}
	}
	return true
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one whole-module unit of work: the analyzer sees every
// package at once, so it can build a call graph or collect cross-package
// facts before reporting.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the repository's analyzer battery with its package scopes
// configured. The scopes implement the determinism policy of
// docs/DETERMINISM.md: simulation and decision packages must be
// reproducible; cmd binaries and examples are allowed wall-clock,
// fire-and-forget behaviour.
func Suite() []*Analyzer {
	nd := Nondeterminism()
	nd.Include = []string{"internal/"}
	mr := MapRange()
	mr.Include = []string{"internal/"}
	fc := FloatCmp()
	fc.Include = []string{
		"internal/core", "internal/sched", "internal/sim",
		"internal/txn", "internal/executor", "internal/cluster",
		"internal/contention", "internal/slo",
	}
	gh := GoroutineHygiene()
	gh.Exclude = []string{"cmd/", "examples/"}
	ex := ExhaustiveSwitch()
	// The whole-program analyzers are annotation-driven (//lint:hotpath
	// roots, `// guarded by` fields, sync/atomic usage) and need no path
	// scope: without annotations they are silent.
	hp := HotPathAlloc()
	lg := LockGuard()
	ac := AtomicCheck()
	return []*Analyzer{nd, mr, fc, gh, ex, hp, lg, ac}
}

// Run applies each analyzer to every package in its scope, filters
// suppressed findings, and returns the remainder sorted by position. The
// ordering is total (position, then analyzer, then message), so output is
// deterministic regardless of analyzer-internal map iteration.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, diags: &diags})
	}
	for _, pkg := range pkgs {
		diags = append(diags, checkDirectives(fset, pkg)...)
	}
	diags = filterIgnored(fset, pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		if di.Analyzer != dj.Analyzer {
			return di.Analyzer < dj.Analyzer
		}
		return di.Message < dj.Message
	})
	return diags
}

// enclosingFuncLits returns the source ranges of every function literal in
// f. Analyzers use it to exempt comparator closures (sort.Slice, pq.NewHeap)
// whose exact comparisons are deliberate tie-breaking.
func enclosingFuncLits(f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			spans = append(spans, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return spans
}

func inAnySpan(pos token.Pos, spans [][2]token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos < s[1] {
			return true
		}
	}
	return false
}
