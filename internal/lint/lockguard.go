package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard returns the analyzer enforcing `// guarded by <mu>` field
// annotations: a struct field carrying the annotation may only be read or
// written while the named mutex of the same object is held. Holding is
// tracked intra-procedurally — Lock/RLock calls acquire, Unlock/RUnlock
// release, deferred unlocks keep the lock held to the end of the function,
// and state never leaks out of a conditional branch or loop body (a lock
// taken inside an if is not assumed held after it).
//
// Two deliberate exemptions keep the check annotation-cheap:
//
//   - accesses through a base object declared inside the current function
//     body are skipped: a constructor initializing a struct it has not yet
//     published cannot race;
//   - function literals are checked with an empty lock set of their own,
//     since a closure generally runs on a different goroutine or at a later
//     time than its creation site.
func LockGuard() *Analyzer {
	a := &Analyzer{
		Name: "lockguard",
		Doc: "enforces `// guarded by <mu>` struct-field annotations: annotated " +
			"fields may only be accessed while the named mutex on the same object " +
			"is held (intra-procedural Lock/Unlock/defer tracking)",
	}
	a.Run = func(pass *Pass) {
		guards := guardedFields(pass.Pkg)
		if len(guards) == 0 {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := &lockChecker{pass: pass, guards: guards, fn: fd}
				c.stmts(fd.Body.List, map[string]bool{})
			}
		}
	}
	return a
}

// guardedFields collects the package's annotated struct fields: the field's
// doc or trailing comment contains "guarded by <name>", where <name> is a
// sibling mutex field.
func guardedFields(pkg *Package) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						out[v] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

// guardName extracts the mutex name from a field's "guarded by <mu>"
// comment, or "".
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			idx := strings.Index(text, "guarded by ")
			if idx < 0 {
				continue
			}
			rest := strings.Fields(text[idx+len("guarded by "):])
			if len(rest) > 0 {
				return strings.TrimRight(rest[0], ".,;:")
			}
		}
	}
	return ""
}

// lockChecker walks one function body, threading the set of held mutexes.
// Keys are types.ExprString of the mutex expression ("s.mu", "h.state.mu").
type lockChecker struct {
	pass   *Pass
	guards map[*types.Var]string
	fn     *ast.FuncDecl
}

func (c *lockChecker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

// copyHeld snapshots the lock set for a branch body, so acquisitions and
// releases inside it do not leak past it.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	//lint:ignore maprange copying a set; destination is a map with identical ordering semantics
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *lockChecker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if mu, op := lockOp(s.X); op != lockNone {
			if op == lockAcquire {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		c.exprs(held, s.X)
	case *ast.DeferStmt:
		if _, op := lockOp(s.Call); op == lockRelease {
			return // deferred unlock: the lock stays held to function end
		}
		c.exprs(held, s.Call)
	case *ast.GoStmt:
		// The goroutine runs concurrently: its body starts with no locks.
		c.exprs(map[string]bool{}, s.Call)
	case *ast.IfStmt:
		c.stmt(s.Init, held)
		c.exprs(held, s.Cond)
		c.stmts(s.Body.List, copyHeld(held))
		c.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		c.stmt(s.Init, held)
		c.exprs(held, s.Cond)
		body := copyHeld(held)
		c.stmts(s.Body.List, body)
		c.stmt(s.Post, body)
	case *ast.RangeStmt:
		c.exprs(held, s.X)
		c.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		c.stmt(s.Init, held)
		c.exprs(held, s.Tag)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := copyHeld(held)
				c.exprs(branch, cc.List...)
				c.stmts(cc.Body, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held)
		c.stmt(s.Assign, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				branch := copyHeld(held)
				c.stmt(cc.Comm, branch)
				c.stmts(cc.Body, branch)
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		c.exprs(held, s.Rhs...)
		c.exprs(held, s.Lhs...)
	case *ast.ReturnStmt:
		c.exprs(held, s.Results...)
	case *ast.IncDecStmt:
		c.exprs(held, s.X)
	case *ast.SendStmt:
		c.exprs(held, s.Chan, s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(held, vs.Values...)
				}
			}
		}
	}
}

// exprs checks every guarded-field access inside the given expressions
// against the current lock set. Function literals are re-entered with an
// empty set of their own.
func (c *lockChecker) exprs(held map[string]bool, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				c.stmts(n.Body.List, map[string]bool{})
				return false
			case *ast.SelectorExpr:
				c.checkAccess(n, held)
			}
			return true
		})
	}
}

// checkAccess reports sel if it reaches an annotated field without the
// guard held.
func (c *lockChecker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	s, ok := c.pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, ok := c.guards[field]
	if !ok {
		return
	}
	key := types.ExprString(sel.X) + "." + guard
	if held[key] {
		return
	}
	if c.localBase(sel.X) {
		return // object under construction, not yet shared
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"field %s is guarded by %s but accessed without holding %s",
		field.Name(), guard, key)
}

// localBase reports whether the root identifier of e is declared inside the
// current function's body (not a parameter or receiver), meaning the object
// cannot yet be visible to another goroutine.
func (c *lockChecker) localBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.Pkg.Info.Uses[x]
			if obj == nil {
				return false
			}
			body := c.fn.Body
			return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		default:
			return false
		}
	}
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp matches mu.Lock()/RLock()/Unlock()/RUnlock() call expressions and
// returns the mutex expression's string key plus the operation.
func lockOp(e ast.Expr) (string, lockOpKind) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), lockAcquire
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), lockRelease
	}
	return "", lockNone
}
