// Package app is the caller side of the call-graph golden test: it exercises
// a static cross-package call, a call through an interface (which must fan
// out to every satisfying concrete type), a method value bound to a concrete
// receiver, a method value bound to an interface receiver, and a plain
// function value.
package app

import "graphmod/animals"

// All drives every dispatch shape the graph builder must resolve.
func All() []string {
	d := animals.NewDog("rex") // static call
	var s animals.Speaker = d
	out := []string{s.Speak()} // interface dispatch: *Dog and Cat

	f := d.Speak // method value, concrete receiver
	out = append(out, f())

	g := s.Speak // method value, interface receiver: fans out too
	out = append(out, g())

	out = append(out, run(animals.Cat{}.Speak)) // method value passed as arg
	return out
}

// run invokes a function value; the call itself resolves to no declared
// function (the target is whatever flowed in at the call site).
func run(f func() string) string { return f() }

// unused exercises a plain function value reference.
func unused() func(string) *animals.Dog { return animals.NewDog }
