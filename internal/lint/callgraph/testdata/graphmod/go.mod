module graphmod

go 1.22
