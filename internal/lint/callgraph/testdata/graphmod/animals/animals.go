// Package animals is the callee side of the call-graph golden test: an
// interface with two concrete implementations (one pointer receiver, one
// value receiver) plus a plain helper, so the graph must demonstrate static
// dispatch, interface fan-out, and receiver-kind handling.
package animals

// Speaker is the dispatch surface the golden test resolves through.
type Speaker interface {
	Speak() string
}

// Dog implements Speaker with a pointer receiver.
type Dog struct{ name string }

// Speak implements Speaker.
func (d *Dog) Speak() string { return bark(d.name) }

// Cat implements Speaker with a value receiver.
type Cat struct{}

// Speak implements Speaker.
func (Cat) Speak() string { return "meow" }

// bark is only reachable through (*Dog).Speak.
func bark(name string) string { return name + ": woof" }

// NewDog is a plain function called statically from the app package.
func NewDog(name string) *Dog { return &Dog{name: name} }
