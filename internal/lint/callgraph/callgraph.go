// Package callgraph builds a whole-program call graph over a type-checked
// module, using only the standard library's go/ast and go/types (keeping the
// repository's stdlib-only promise — no golang.org/x/tools).
//
// The graph is the substrate of internal/lint's whole-program analyzers:
// hotpath-alloc computes the set of functions reachable from annotated
// //lint:hotpath roots and flags allocation idioms anywhere in that set, so
// the zero-allocation goal of the scheduler decision loop survives interface
// indirection (sched.Scheduler, obs.Sink) and helper extraction.
//
// Resolution strategy, in decreasing precision:
//
//   - static calls — a direct call of a declared function or a method on a
//     concrete receiver resolves to exactly that function;
//   - interface dispatch — a call through an interface method fans out to
//     the matching method of every concrete named type in the module whose
//     method set satisfies the interface (class-hierarchy analysis). The
//     module's types are a closed world for this purpose; implementations
//     living outside the analyzed module are invisible;
//   - function and method values — referencing a declared function or a
//     method as a value (handler registration, comparator capture) adds an
//     edge from the referencing function, because the value may be called
//     anywhere it flows.
//
// Function literals have no types.Func object and therefore no node of
// their own: a literal's body is attributed to the declared function that
// lexically contains it, which is exactly what a reachability client wants
// (the literal runs on the hot path iff its definer put it there).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one type-checked package included in the graph.
type Unit struct {
	// Path is the package's import path.
	Path string
	// Files are the package's parsed source files.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// Static is a direct call of a declared function or concrete method.
	Static EdgeKind = iota
	// Interface is a dynamic dispatch through an interface method, resolved
	// against every satisfying concrete type in the module.
	Interface
	// FuncValue is a reference to a function or method as a value; the
	// target may run wherever the value flows.
	FuncValue
)

// String returns the kind's display name.
func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one resolved call (or value reference) from a caller to a callee.
type Edge struct {
	Callee *types.Func
	Kind   EdgeKind
	// Pos is the first site that produced this (callee, kind) pair.
	Pos token.Pos
}

// Node is one declared function with its body and defining unit.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Unit *Unit
	// Out holds the node's outgoing edges, deduplicated per (callee, kind)
	// and sorted deterministically.
	Out []Edge
}

// Graph is the module's call graph. Nodes exist only for functions declared
// with a body inside the analyzed units; edges to undeclared targets
// (standard-library functions) are omitted.
type Graph struct {
	nodes map[*types.Func]*Node
}

// Node returns the graph node for fn (normalizing generic instantiations to
// their origin declaration), or nil when fn has no body in the module.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Funcs returns every declared function in the graph, sorted by FuncString.
func (g *Graph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.nodes))
	//lint:ignore maprange collecting map keys into a slice that is sorted immediately below
	for fn := range g.nodes {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return FuncString(out[i]) < FuncString(out[j]) })
	return out
}

// Reachable walks the graph from roots and returns, for every reachable
// declared function, the root it was first reached from (roots map to
// themselves). Functions in skip — and everything reachable only through
// them — are excluded: lint uses this for //lint:coldpath pruning.
func (g *Graph) Reachable(roots []*types.Func, skip map[*types.Func]bool) map[*types.Func]*types.Func {
	reach := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		r = r.Origin()
		if g.nodes[r] == nil || skip[r] || reach[r] != nil {
			continue
		}
		reach[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := reach[fn]
		for _, e := range g.nodes[fn].Out {
			callee := e.Callee.Origin()
			if g.nodes[callee] == nil || skip[callee] || reach[callee] != nil {
				continue
			}
			reach[callee] = root
			queue = append(queue, callee)
		}
	}
	return reach
}

// FuncString renders fn unambiguously for output and golden files:
// "pkgpath.Name" for functions, "pkgpath.(Recv).Name" or
// "pkgpath.(*Recv).Name" for methods.
func FuncString(fn *types.Func) string {
	var sb strings.Builder
	if pkg := fn.Pkg(); pkg != nil {
		sb.WriteString(pkg.Path())
		sb.WriteByte('.')
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		name := types.TypeString(t, func(*types.Package) string { return "" })
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		fmt.Fprintf(&sb, "(%s%s).", star, name)
	}
	sb.WriteString(fn.Name())
	return sb.String()
}

// Build constructs the call graph over units. Units must be fully
// type-checked; intra-module imports must resolve to the same *types.Package
// values across units (internal/lint's loader guarantees this).
func Build(units []*Unit) *Graph {
	b := &builder{
		graph: &Graph{nodes: make(map[*types.Func]*Node)},
	}
	// Pass 1: a node per declared function with a body.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.graph.nodes[obj] = &Node{Func: obj, Decl: fd, Unit: u}
			}
		}
	}
	// Pass 2: the closed world of concrete named types, for interface
	// dispatch. Scope.Names() is sorted, so the candidate order — and with
	// it every edge list — is deterministic.
	for _, u := range units {
		scope := u.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
	// Pass 3: edges.
	for _, fn := range b.graph.Funcs() {
		b.addEdges(b.graph.nodes[fn])
	}
	return b.graph
}

type builder struct {
	graph    *Graph
	concrete []*types.Named
}

// addEdges extracts every outgoing edge of node.
func (b *builder) addEdges(node *Node) {
	info := node.Unit.Info
	seen := map[Edge]bool{} // keyed with Pos zeroed for (callee, kind) dedup
	add := func(callee *types.Func, kind EdgeKind, pos token.Pos) {
		if callee == nil {
			return
		}
		callee = callee.Origin()
		if b.graph.nodes[callee] == nil {
			return // no body in the module (stdlib, interface declaration)
		}
		key := Edge{Callee: callee, Kind: kind}
		if seen[key] {
			return
		}
		seen[key] = true
		node.Out = append(node.Out, Edge{Callee: callee, Kind: kind, Pos: pos})
	}

	// consumed marks identifiers already handled as the operator of a call,
	// so the function-value sweep below does not double-count them.
	consumed := map[*ast.Ident]bool{}

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			b.callEdges(node, info, n, add, consumed)
		case *ast.SelectorExpr:
			if consumed[n.Sel] {
				return true
			}
			if sel, ok := info.Selections[n]; ok {
				if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
					return true // field selection
				}
				consumed[n.Sel] = true
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return true
				}
				if types.IsInterface(sel.Recv()) {
					b.interfaceEdges(sel.Recv(), m, FuncValue, n.Pos(), add)
				} else {
					add(m, FuncValue, n.Pos())
				}
				return true
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				// Package-qualified function referenced as a value.
				consumed[n.Sel] = true
				add(fn, FuncValue, n.Pos())
			}
		case *ast.Ident:
			if consumed[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				consumed[n] = true
				add(fn, FuncValue, n.Pos())
			}
		}
		return true
	})

	sort.Slice(node.Out, func(i, j int) bool {
		a, c := node.Out[i], node.Out[j]
		if sa, sc := FuncString(a.Callee), FuncString(c.Callee); sa != sc {
			return sa < sc
		}
		return a.Kind < c.Kind
	})
}

// callEdges resolves one call expression.
func (b *builder) callEdges(node *Node, info *types.Info, call *ast.CallExpr, add func(*types.Func, EdgeKind, token.Pos), consumed map[*ast.Ident]bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) or x.m[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		consumed[f] = true
		if fn, ok := info.Uses[f].(*types.Func); ok {
			add(fn, Static, call.Pos())
		}
	case *ast.SelectorExpr:
		consumed[f.Sel] = true
		if sel, ok := info.Selections[f]; ok {
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				return // func-typed field: value call, target unknown
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				b.interfaceEdges(sel.Recv(), m, Interface, call.Pos(), add)
				return
			}
			add(m, Static, call.Pos())
			return
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			add(fn, Static, call.Pos())
		}
	}
}

// interfaceEdges fans a dispatch through interface method m out to the
// matching method of every satisfying concrete type in the module.
func (b *builder) interfaceEdges(recv types.Type, m *types.Func, kind EdgeKind, pos token.Pos, add func(*types.Func, EdgeKind, token.Pos)) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, named := range b.concrete {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) {
				continue
			}
			impl = ptr
		}
		ms := types.NewMethodSet(impl)
		for i := 0; i < ms.Len(); i++ {
			mf, ok := ms.At(i).Obj().(*types.Func)
			if ok && mf.Id() == m.Id() {
				add(mf, kind, pos)
				break
			}
		}
	}
}
