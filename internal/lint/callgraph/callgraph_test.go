package callgraph_test

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/callgraph"
)

// buildGraphmod loads testdata/graphmod through the lint loader and builds
// its call graph.
func buildGraphmod(t *testing.T) *callgraph.Graph {
	t.Helper()
	_, pkgs, err := lint.LoadModule(filepath.Join("testdata", "graphmod"))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{Path: p.Path, Files: p.Files, Types: p.Types, Info: p.Info})
	}
	return callgraph.Build(units)
}

// render produces the textual graph form compared against graph.golden: one
// line per declared function, indented "kind callee" lines per edge, both in
// the graph's deterministic order.
func render(g *callgraph.Graph) string {
	var sb strings.Builder
	for _, fn := range g.Funcs() {
		fmt.Fprintf(&sb, "%s\n", callgraph.FuncString(fn))
		for _, e := range g.Node(fn).Out {
			fmt.Fprintf(&sb, "  %-9s %s\n", e.Kind, callgraph.FuncString(e.Callee))
		}
	}
	return sb.String()
}

func TestGraphGolden(t *testing.T) {
	got := render(buildGraphmod(t))
	goldenPath := filepath.Join("testdata", "graph.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden: %v (got graph:\n%s)", err, got)
	}
	if got != string(want) {
		t.Errorf("graph mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// lookup finds a function by its FuncString rendering.
func lookup(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, fn := range g.Funcs() {
		if callgraph.FuncString(fn) == name {
			return g.Node(fn)
		}
	}
	t.Fatalf("function %q not in graph", name)
	return nil
}

func TestReachable(t *testing.T) {
	g := buildGraphmod(t)
	root := lookup(t, g, "graphmod/app.All")

	reach := g.Reachable([]*types.Func{root.Func}, nil)
	var got []string
	for fn := range reach {
		got = append(got, callgraph.FuncString(fn))
	}
	want := map[string]bool{
		"graphmod/app.All":              true,
		"graphmod/app.run":              true,
		"graphmod/animals.NewDog":       true,
		"graphmod/animals.(*Dog).Speak": true,
		"graphmod/animals.(Cat).Speak":  true,
		"graphmod/animals.bark":         true,
	}
	if len(got) != len(want) {
		t.Errorf("reachable set = %v, want keys of %v", got, want)
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("unexpected reachable function %s", name)
		}
	}
	for fn, r := range reach {
		if callgraph.FuncString(r) != "graphmod/app.All" {
			t.Errorf("root of %s = %s, want graphmod/app.All", callgraph.FuncString(fn), callgraph.FuncString(r))
		}
	}
}

func TestReachableSkipPrunes(t *testing.T) {
	g := buildGraphmod(t)
	root := lookup(t, g, "graphmod/app.All")
	dogSpeak := lookup(t, g, "graphmod/animals.(*Dog).Speak")

	reach := g.Reachable([]*types.Func{root.Func}, map[*types.Func]bool{dogSpeak.Func: true})
	for fn := range reach {
		name := callgraph.FuncString(fn)
		if name == "graphmod/animals.(*Dog).Speak" || name == "graphmod/animals.bark" {
			t.Errorf("%s reachable despite skip of (*Dog).Speak", name)
		}
	}
	if _, ok := reach[lookup(t, g, "graphmod/animals.(Cat).Speak").Func]; !ok {
		t.Errorf("(Cat).Speak should stay reachable when only (*Dog).Speak is skipped")
	}
}
