package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheck returns the whole-module analyzer enforcing atomic-access
// consistency: once any code passes a variable's address to a sync/atomic
// function, every other access to that variable must also go through
// sync/atomic — a single plain read or write next to atomic ones is a data
// race the race detector only catches when the interleaving happens to
// occur. The census is module-wide (an exported counter field may be
// atomically updated in one package and read in another), which is why this
// is a RunModule analyzer.
//
// Typed atomics (atomic.Uint64 and friends) are immune by construction and
// never flagged: they expose no plain access to forget.
//
// Plain access is exempt when the base object was declared inside the
// current function body (an object under construction is not yet shared) —
// the same publication argument lockguard uses.
func AtomicCheck() *Analyzer {
	a := &Analyzer{
		Name: "atomiccheck",
		Doc: "flags plain reads/writes of variables that are elsewhere accessed " +
			"through sync/atomic functions; mixing the two is a data race",
	}
	a.RunModule = func(p *ModulePass) {
		// Pass 1: census of objects whose address reaches sync/atomic, and
		// the exact &x arguments that are therefore sanctioned.
		atomicAt := map[types.Object]token.Pos{}
		sanctioned := map[ast.Node]bool{}
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicCall(pkg.Info, call) {
						return true
					}
					for _, arg := range call.Args {
						ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || ue.Op != token.AND {
							continue
						}
						target := ast.Unparen(ue.X)
						obj := accessedObject(pkg.Info, target)
						if obj == nil {
							continue
						}
						if _, seen := atomicAt[obj]; !seen {
							atomicAt[obj] = call.Pos()
						}
						sanctioned[target] = true
					}
					return true
				})
			}
		}
		if len(atomicAt) == 0 {
			return
		}
		// Pass 2: every other access to those objects must be atomic too.
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, _ := d.(*ast.FuncDecl)
					checkAtomicUses(p, pkg, f, fd, atomicAt, sanctioned)
				}
			}
		}
	}
	return a
}

// checkAtomicUses walks one top-level declaration (fd is nil for var/const
// declarations, whose package-initialization-time plain access is safe and
// skipped) and reports non-sanctioned accesses to atomically-used objects.
func checkAtomicUses(p *ModulePass, pkg *Package, f *ast.File, fd *ast.FuncDecl, atomicAt map[types.Object]token.Pos, sanctioned map[ast.Node]bool) {
	if fd == nil || fd.Body == nil {
		return
	}
	report := func(pos token.Pos, obj types.Object) {
		at := p.Fset.Position(atomicAt[obj])
		p.Reportf(pos,
			"%s is accessed with sync/atomic (%s:%d) but read/written plainly here; "+
				"mixing atomic and plain access races — use atomic ops everywhere or a typed atomic",
			obj.Name(), at.Filename, at.Line)
	}
	local := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.Ident:
				obj := pkg.Info.Uses[x]
				return obj != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() < fd.Body.End()
			default:
				return false
			}
		}
	}
	consumed := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			consumed[n.Sel] = true
			if sanctioned[n] {
				return true
			}
			sel, ok := pkg.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			obj := sel.Obj()
			if _, ok := atomicAt[obj]; ok && !local(n.X) {
				report(n.Sel.Pos(), obj)
			}
		case *ast.Ident:
			if consumed[n] || sanctioned[n] {
				return true
			}
			obj := pkg.Info.Uses[n]
			if obj == nil {
				return true
			}
			if _, ok := atomicAt[obj]; ok {
				report(n.Pos(), obj)
			}
		}
		return true
	})
}

// accessedObject resolves the variable an &-argument targets: a struct field
// (through the selection) or a plain variable.
func accessedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v // pkg-qualified variable
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicCall matches direct calls of sync/atomic package functions.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
