package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatCmpNames are lowercase fragments of identifiers that carry simulated
// time quantities: deadlines, slacks, tardiness, arrival/finish instants and
// remaining work. Exact ==/!= between two of these is almost always a bug —
// they are sums and differences of float64s, so equality that holds
// algebraically can fail (or spuriously hold) numerically.
var floatCmpNames = []string{
	"deadline", "slack", "tard", "arrival", "finish", "remain", "expiry",
}

// FloatCmp returns the analyzer flagging exact float64 equality on
// deadline/slack-like quantities. Comparator closures (sort.Slice,
// pq.NewHeap less functions) are exempt: comparing a field of x against the
// same field of y for tie-breaking is deliberate and deterministic.
func FloatCmp() *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc: "flags == and != between float64 deadline/slack/tardiness quantities " +
			"outside comparator closures; use an epsilon comparison (cf. " +
			"completionEpsilon in internal/sim) or annotate the intentional exact " +
			"check with //lint:ignore",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			litSpans := enclosingFuncLits(f)
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if inAnySpan(be.Pos(), litSpans) {
					return true // comparator closure: tie-breaking idiom
				}
				if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
					return true
				}
				if !timeQuantityName(be.X) && !timeQuantityName(be.Y) {
					return true
				}
				pass.Reportf(be.OpPos,
					"exact %s comparison of float64 time quantity (%s %s %s); deadline/slack arithmetic "+
						"accumulates rounding error — compare within an epsilon (cf. completionEpsilon in "+
						"internal/sim) or annotate with //lint:ignore floatcmp",
					be.Op, types.ExprString(be.X), be.Op, types.ExprString(be.Y))
				return true
			})
		}
	}
	return a
}

// isFloat reports whether t (possibly named) has a floating-point
// underlying type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// timeQuantityName reports whether the expression's trailing identifier
// looks like a simulated-time quantity.
func timeQuantityName(e ast.Expr) bool {
	name := strings.ToLower(lastName(e))
	for _, frag := range floatCmpNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// lastName extracts the final identifier of an expression: x -> "x",
// a.b.Deadline -> "Deadline", t.Tardiness() -> "Tardiness",
// xs[i].Finish -> "Finish".
func lastName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return lastName(e.Fun)
	case *ast.ParenExpr:
		return lastName(e.X)
	case *ast.IndexExpr:
		return lastName(e.X)
	case *ast.UnaryExpr:
		return lastName(e.X)
	case *ast.StarExpr:
		return lastName(e.X)
	}
	return ""
}
