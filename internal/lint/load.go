package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Module is the module path the package belongs to.
	Module string
}

// LoadModule parses and type-checks every non-test package under root,
// which must contain a go.mod. Intra-module imports resolve against the
// freshly checked packages; all other imports (the standard library) resolve
// through the stdlib source importer, so the loader needs nothing beyond a
// GOROOT with source — no export data, no network, no x/tools.
//
// Directories named testdata or vendor, hidden directories, and nested
// modules (subdirectories with their own go.mod) are skipped, matching the
// go tool's ./... semantics. Test files are excluded: the determinism
// policy targets production code, and tests legitimately use wall-clock
// timeouts.
func LoadModule(root string) (*token.FileSet, []*Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    absRoot,
		module:  modPath,
		dirs:    map[string]string{},
		built:   map[string]*Package{},
		loading: map[string]bool{},
	}
	ld.fallback = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	if err := ld.discover(); err != nil {
		return nil, nil, err
	}
	paths := make([]string, 0, len(ld.dirs))
	//lint:ignore maprange collected import paths are sorted immediately below
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	// load() may have been entered recursively; return module order, not
	// completion order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return fset, pkgs, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(strings.Trim(rest, `"`)), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// loader walks, parses and type-checks the module, memoizing per package.
type loader struct {
	fset     *token.FileSet
	root     string
	module   string
	dirs     map[string]string // import path -> directory
	built    map[string]*Package
	loading  map[string]bool // cycle guard
	fallback types.ImporterFrom
}

// discover records every directory under root that holds at least one
// non-test .go file.
func (ld *loader) discover() error {
	return filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			rel, err := filepath.Rel(ld.root, path)
			if err != nil {
				return err
			}
			imp := ld.module
			if rel != "." {
				imp = ld.module + "/" + filepath.ToSlash(rel)
			}
			ld.dirs[imp] = path
			break
		}
		return nil
	})
}

// load parses and type-checks one module package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.built[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		Module: ld.module,
	}
	ld.built[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths resolve
// through the loader itself, everything else through the stdlib source
// importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		if _, ok := ld.dirs[path]; !ok {
			return nil, fmt.Errorf("lint: module package %s not found under %s", path, ld.root)
		}
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: module package %s has no Go files", path)
		}
		return pkg.Types, nil
	}
	return ld.fallback.ImportFrom(path, dir, mode)
}
