package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// unscoped returns the analyzer suite with package scoping cleared, so the
// corpus (module path "corpus", which matches no repo scope fragment)
// exercises every analyzer's detection logic.
func unscoped() []*Analyzer {
	as := Suite()
	for _, a := range as {
		a.Include, a.Exclude = nil, nil
	}
	return as
}

func loadCorpus(t *testing.T) (*token.FileSet, []*Package) {
	t.Helper()
	fset, pkgs, err := LoadModule(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("corpus loaded zero packages")
	}
	return fset, pkgs
}

// key normalizes a finding to "file:line analyzer" for comparison against
// the corpus' // want markers.
func key(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s:%d %s", filepath.Base(file), line, analyzer)
}

// TestCorpus asserts hits and misses exactly: every line marked
// "// want <analyzer>" produces a finding from that analyzer, and no
// unmarked line produces anything. The suppress package seeds violations
// under //lint:ignore directives, so silence there is part of the
// assertion.
func TestCorpus(t *testing.T) {
	fset, pkgs := loadCorpus(t)
	diags := Run(fset, pkgs, unscoped())

	got := map[string]bool{}
	gotAnalyzers := map[string]bool{}
	for _, d := range diags {
		got[key(d.Pos.Filename, d.Pos.Line, d.Analyzer)] = true
		gotAnalyzers[d.Analyzer] = true
	}

	want := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, name := range strings.Fields(rest) {
						want[key(pos.Filename, pos.Line, name)] = true
					}
				}
			}
		}
	}

	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	if len(missing) > 0 {
		t.Errorf("expected findings not produced:\n  %s", strings.Join(missing, "\n  "))
	}
	if len(unexpected) > 0 {
		t.Errorf("unexpected findings:\n  %s", strings.Join(unexpected, "\n  "))
	}

	// The acceptance bar: at least five distinct analyzers each catch a
	// seeded violation.
	if len(gotAnalyzers) < 5 {
		t.Errorf("only %d distinct analyzers fired (%v); want >= 5", len(gotAnalyzers), gotAnalyzers)
	}
}

// TestRunIsDeterministic guards the engine against its own medicine: two
// runs over the same corpus must produce byte-identical output.
func TestRunIsDeterministic(t *testing.T) {
	fset, pkgs := loadCorpus(t)
	render := func() string {
		var sb strings.Builder
		for _, d := range Run(fset, pkgs, unscoped()) {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if again := render(); again != first {
			t.Fatalf("run %d differs:\n%s\n---\n%s", i+2, first, again)
		}
	}
}

func TestScopeMatching(t *testing.T) {
	a := &Analyzer{Name: "x", Include: []string{"internal/sim", "internal/core"}}
	for path, want := range map[string]bool{
		"repro/internal/sim":       true,
		"repro/internal/core":      true,
		"repro/internal/simulated": true, // substring semantics, by design
		"repro/internal/txn":       false,
		"repro/cmd/asetssim":       false,
	} {
		if got := a.applies(path); got != want {
			t.Errorf("Include applies(%q) = %v, want %v", path, got, want)
		}
	}
	b := &Analyzer{Name: "y", Exclude: []string{"cmd/", "examples/"}}
	for path, want := range map[string]bool{
		"repro/internal/server":   true,
		"repro/cmd/asetsweb":      false,
		"repro/examples/webfarm":  false,
		"repro/internal/executor": true,
	} {
		if got := b.applies(path); got != want {
			t.Errorf("Exclude applies(%q) = %v, want %v", path, got, want)
		}
	}
}

// writeModule materializes a throwaway module for directive tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestMalformedDirective: an ignore without a reason is inert (the finding
// survives) and is itself reported.
func TestMalformedDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

//lint:ignore maprange
func F(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["maprange"] != 1 {
		t.Errorf("maprange findings = %d, want 1 (malformed directive must not suppress)", byAnalyzer["maprange"])
	}
	if byAnalyzer["directive"] != 1 {
		t.Errorf("directive findings = %d, want 1 (missing reason must be reported)", byAnalyzer["directive"])
	}
}

// TestFileIgnore: //lint:file-ignore silences the analyzer for the whole
// file but nothing else.
func TestFileIgnore(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `//lint:file-ignore maprange generated lookup tables; order provably irrelevant
package a

func F(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	for k := range m {
		n += k
	}
	return n
}
`,
		"b/b.go": `package b

func G(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
`,
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fset, pkgs, unscoped())
	if len(diags) != 1 || diags[0].Analyzer != "maprange" || filepath.Base(diags[0].Pos.Filename) != "b.go" {
		t.Fatalf("diagnostics = %v, want exactly one maprange finding in b.go", diags)
	}
}

// TestLoadModuleSkipsTestsAndTestdata: the loader must not descend into
// nested modules or testdata, and must ignore _test.go files.
func TestLoadModuleSkipsTestsAndTestdata(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go":            "package a\n\n// F is fine.\nfunc F() {}\n",
		"a/a_test.go":       "package a\n\nimport \"testing\"\n\nfunc TestF(t *testing.T) { F() }\n",
		"a/testdata/bad.go": "package broken syntax here",
		"nested/go.mod":     "module nested\n\ngo 1.22\n",
		"nested/x.go":       "package x\n\nimport \"does/not/exist\"\n\nvar _ = exist.X\n",
	})
	fset, pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmpmod/a" {
		t.Fatalf("packages = %v, want exactly tmpmod/a", pkgs)
	}
	if got := len(pkgs[0].Files); got != 1 {
		t.Fatalf("tmpmod/a has %d files, want 1 (test file must be skipped)", got)
	}
	_ = fset
}
