#!/bin/sh
# check.sh — the full local gate, identical to CI.
# Usage: scripts/check.sh [short]
#   short: skip the -race pass (quick pre-commit loop)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

if [ "${1:-}" = "short" ]; then
    echo "== go test (short)"
    go test -short ./...
    # Even the quick loop races the HTTP endpoints (/metrics, /events,
    # /api/*) against a live replay — including the fault-injection hammer,
    # which shares the admission controller between the submit gate and the
    # replay goroutine. Both hammers are small and fast.
    echo "== go test -race (endpoint + fault + pooled-event + contention + slo hammers)"
    go test -race -run Hammer ./internal/server ./internal/obs ./internal/contention ./internal/slo
else
    echo "== go test"
    go test ./...
    echo "== go test -race"
    go test -race ./...
fi

echo "== asetslint"
go run ./cmd/asetslint ./...

echo "== obs overhead benchmark"
go run ./cmd/asetsbench -obs-bench BENCH_obs.json -n 1000
cat BENCH_obs.json

echo "== span + sketch overhead benchmark"
go run ./cmd/asetsbench -span-bench BENCH_span.json -n 1000
cat BENCH_span.json

echo "== observability scale benchmark (budget gate)"
go run ./cmd/asetsbench -scale-bench BENCH_scale.json
cat BENCH_scale.json

echo "== overload shedding benchmark"
go run ./cmd/asetsbench -fault-bench BENCH_fault.json -n 300 -seeds 2
cat BENCH_fault.json

echo "== parallel runner benchmark (bit-exactness gate)"
go run ./cmd/asetsbench -parallel-bench BENCH_parallel.json -n 300 -seeds 2
cat BENCH_parallel.json

echo "== cluster failover benchmark (failover + determinism gate)"
go run ./cmd/asetsbench -cluster-bench BENCH_cluster.json -n 300
cat BENCH_cluster.json

echo "== contention benchmark (conflict-aware wins + determinism gate)"
go run ./cmd/asetsbench -contention-bench BENCH_contention.json -n 400 -seeds 3
cat BENCH_contention.json

echo "== slo benchmark (alert lead time + determinism + alloc gate)"
go run ./cmd/asetsbench -slo-bench BENCH_slo.json -n 300 -seeds 2
cat BENCH_slo.json

echo "all checks passed"
