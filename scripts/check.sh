#!/bin/sh
# check.sh — the full local gate, identical to CI.
# Usage: scripts/check.sh [short]
#   short: skip the -race pass (quick pre-commit loop)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

if [ "${1:-}" = "short" ]; then
    echo "== go test (short)"
    go test -short ./...
else
    echo "== go test"
    go test ./...
    echo "== go test -race"
    go test -race ./...
fi

echo "== asetslint"
go run ./cmd/asetslint ./...

echo "all checks passed"
