// Parallel runner benchmark: measures the wall-clock gain of fanning a
// representative experiment sweep across the worker pool, and — the part CI
// actually gates on — asserts the parallel gather is bit-identical to the
// serial path. The result is a small machine-readable JSON document
// (BENCH_parallel.json in CI).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// parallelBenchResult is the BENCH_parallel.json document.
type parallelBenchResult struct {
	Experiment      string  `json:"experiment"`       // what the jobs sweep
	N               int     `json:"n"`                // transactions per run
	Seeds           int     `json:"seeds"`            // replications per cell
	Jobs            int     `json:"jobs"`             // total pool jobs
	Workers         int     `json:"workers"`          // parallel worker count
	CPUs            int     `json:"cpus"`             // runtime.NumCPU at bench time
	SerialSeconds   float64 `json:"serial_seconds"`   // Pool{Workers: 1}
	ParallelSeconds float64 `json:"parallel_seconds"` // Pool{Workers: workers}
	Speedup         float64 `json:"speedup"`          // serial / parallel
	Identical       bool    `json:"identical"`        // summaries bit-exact
	SpeedupEnforced bool    `json:"speedup_enforced"` // ≥2× asserted (needs ≥4 CPUs)
}

// parallelBenchJobs builds the benchmark sweep: the figure-14 style
// policies × utilizations × seeds grid, with each cell's workload seed baked
// into its Gen closure, exactly as internal/experiments submits cells.
func parallelBenchJobs(n, seeds int, baseSeed uint64) []runner.Job {
	policies := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"EDF", sched.NewEDF},
		{"SRPT", sched.NewSRPT},
		{"Ready", func() sched.Scheduler { return core.NewReady() }},
		{"ASETS*", func() sched.Scheduler { return core.New() }},
	}
	utils := []float64{0.7, 0.9, 1.1}
	var jobs []runner.Job
	for _, u := range utils {
		for _, p := range policies {
			for s := 0; s < seeds; s++ {
				cfg := workload.Default(u, baseSeed+uint64(s)*0x9e3779b97f4a7c15).WithWorkflows(4, 1).WithWeights()
				cfg.N = n
				jobs = append(jobs, runner.Job{
					Gen:   func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
					New:   p.mk,
					Label: fmt.Sprintf("util=%v policy=%s seed=%d", u, p.name, s),
				})
			}
		}
	}
	return jobs
}

// runParallelBench times the same job slice through Pool{Workers: 1} and
// Pool{Workers: workers}, verifies the gathered summaries are deeply
// identical, and writes the JSON document. The bit-exactness check always
// gates; the ≥2× speedup criterion is asserted only on machines with at
// least four CPUs, where the parallel path can physically win, and the
// document records whether it was enforced.
func runParallelBench(w io.Writer, n, seeds, workers int, baseSeed uint64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 4 {
		// The acceptance criterion is stated at -parallel ≥ 4; oversubscribing
		// a smaller machine is harmless (jobs are compute-bound but short).
		workers = 4
	}

	timed := func(poolWorkers int) ([]*metrics.Summary, float64, error) {
		jobs := parallelBenchJobs(n, seeds, baseSeed)
		start := time.Now()
		sums, err := runner.Pool{Workers: poolWorkers, BaseSeed: baseSeed}.Run(context.Background(), jobs)
		return sums, time.Since(start).Seconds(), err
	}

	// Warm up once so page-ins and first-run allocator growth are not
	// charged to the serial leg.
	if _, _, err := timed(1); err != nil {
		return err
	}
	serialSums, serialSec, err := timed(1)
	if err != nil {
		return err
	}
	parallelSums, parallelSec, err := timed(workers)
	if err != nil {
		return err
	}

	res := parallelBenchResult{
		Experiment:      "policies x utilization sweep (fig14-style workloads)",
		N:               n,
		Seeds:           seeds,
		Jobs:            len(serialSums),
		Workers:         workers,
		CPUs:            runtime.NumCPU(),
		SerialSeconds:   serialSec,
		ParallelSeconds: parallelSec,
		Identical:       reflect.DeepEqual(serialSums, parallelSums),
		SpeedupEnforced: runtime.NumCPU() >= 4 && workers >= 4,
	}
	if parallelSec > 0 {
		res.Speedup = serialSec / parallelSec
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}

	if !res.Identical {
		return fmt.Errorf("parallel summaries are not bit-identical to the serial path (workers=%d)", workers)
	}
	if res.SpeedupEnforced && res.Speedup < 2 {
		return fmt.Errorf("speedup %.2fx below the 2x criterion (workers=%d cpus=%d)", res.Speedup, workers, res.CPUs)
	}
	return nil
}
