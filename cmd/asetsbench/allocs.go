package main

import "runtime"

// measureAllocs reports heap allocations and bytes per operation for reps
// executions of fn, via runtime.MemStats deltas. Mallocs and TotalAlloc are
// monotonic, so the numbers are immune to GC running mid-measurement; a GC
// beforehand keeps survivors of earlier phases from inflating the first op.
// Allocation counts on a single-goroutine workload are deterministic, which
// is what lets BENCH budgets gate on allocs/op tightly while ns/op budgets
// stay generous.
func measureAllocs(reps int, fn func() error) (allocsPerOp, bytesPerOp int64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	r := uint64(reps)
	return int64((after.Mallocs - before.Mallocs) / r), int64((after.TotalAlloc - before.TotalAlloc) / r), nil
}
