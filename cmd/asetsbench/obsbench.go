// Observability overhead benchmark: quantifies what the instrumentation
// layer costs on the simulator hot path, and records the result as a small
// machine-readable JSON document (BENCH_obs.json in CI).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// obsBenchResult is the BENCH_obs.json document.
type obsBenchResult struct {
	N               int     `json:"n"`                   // transactions per simulated run
	BaselineNsPerOp int64   `json:"baseline_ns_per_op"`  // no instrumentation at all
	NopSinkNsPerOp  int64   `json:"nop_sink_ns_per_op"`  // obs.Discard sink, no registry (disabled)
	RingSinkNsPerOp int64   `json:"ring_sink_ns_per_op"` // bounded ring + registry (enabled)
	NopOverheadPct  float64 `json:"nop_overhead_pct"`
	RingOverheadPct float64 `json:"ring_overhead_pct"`
	// Per-configuration allocation profile of one full run (heap allocations
	// and bytes), so allocation regressions are visible independently of ns.
	BaselineAllocsPerOp int64 `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp  int64 `json:"baseline_bytes_per_op"`
	NopSinkAllocsPerOp  int64 `json:"nop_sink_allocs_per_op"`
	NopSinkBytesPerOp   int64 `json:"nop_sink_bytes_per_op"`
	RingSinkAllocsPerOp int64 `json:"ring_sink_allocs_per_op"`
	RingSinkBytesPerOp  int64 `json:"ring_sink_bytes_per_op"`
	RunsPerBatch        int   `json:"runs_per_batch"`
	Batches             int   `json:"batches"`
}

// runObsBench measures full sim.Run calls under three configurations. The
// timed batches are interleaved round-robin across configurations and each
// configuration keeps its fastest individually-timed run, so slow
// machine-wide drift — thermal throttling, a noisy CI neighbor — biases
// every configuration equally instead of whichever happened to run in the
// quiet block.
func runObsBench(w io.Writer, n, reps int) error {
	cfg := workload.Default(0.9, 1).WithWorkflows(4, 1).WithWeights()
	cfg.N = n
	set, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	configs := []sim.Config{
		{}, // baseline: no instrumentation
		{Sink: obs.Discard},
		{Sink: obs.NewRing(1024), Metrics: obs.NewRegistry()},
	}
	// Each batch times its runs individually and keeps the fastest single
	// run: on a shared box, noise arrives in bursts long enough to cover a
	// whole multi-run batch, but a quiet single-run window (~ms) is common,
	// so min-of-runs converges where best-of-batch-averages cannot. The GC
	// flush at the batch boundary keeps one configuration's concurrent mark
	// debt from bleeding into its neighbor's timings; collections triggered
	// mid-batch still charge (via mark assists) the configuration whose
	// allocations forced them.
	runBatch := func(cfg sim.Config, runs int, best time.Duration) (time.Duration, error) {
		runtime.GC()
		for j := 0; j < runs; j++ {
			start := time.Now()
			if _, err := sim.New(cfg).Run(set, core.New()); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	// Size batches to ~50ms each, calibrated on a baseline warmup run
	// (which also pages everything in before timing starts).
	warmupStart := time.Now()
	if _, err := runBatch(configs[0], 1, 0); err != nil {
		return err
	}
	warmup := time.Since(warmupStart)
	runs := int(50 * time.Millisecond / (warmup + 1))
	if runs < 10 {
		runs = 10
	}
	batches := 4 * reps

	best := make([]time.Duration, len(configs))
	for round := 0; round < batches; round++ {
		for i, opts := range configs {
			d, err := runBatch(opts, runs, best[i])
			if err != nil {
				return err
			}
			best[i] = d
		}
	}

	nsPerOp := func(i int) int64 { return best[i].Nanoseconds() }
	baseline, nop, ring := nsPerOp(0), nsPerOp(1), nsPerOp(2)
	pct := func(v int64) float64 {
		return 100 * (float64(v) - float64(baseline)) / float64(baseline)
	}
	res := obsBenchResult{
		N:               n,
		BaselineNsPerOp: baseline,
		NopSinkNsPerOp:  nop,
		RingSinkNsPerOp: ring,
		NopOverheadPct:  pct(nop),
		RingOverheadPct: pct(ring),
		RunsPerBatch:    runs,
		Batches:         batches,
	}
	allocs := func(cfg sim.Config) (int64, int64, error) {
		return measureAllocs(5, func() error {
			_, err := sim.New(cfg).Run(set, core.New())
			return err
		})
	}
	if res.BaselineAllocsPerOp, res.BaselineBytesPerOp, err = allocs(configs[0]); err != nil {
		return err
	}
	if res.NopSinkAllocsPerOp, res.NopSinkBytesPerOp, err = allocs(configs[1]); err != nil {
		return err
	}
	if res.RingSinkAllocsPerOp, res.RingSinkBytesPerOp, err = allocs(configs[2]); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("obs-bench: n=%d baseline=%dns nop-sink=%dns (%+.2f%%) ring-sink=%dns (%+.2f%%)\n",
		n, baseline, nop, res.NopOverheadPct, ring, res.RingOverheadPct)
	return nil
}
