// Overload/robustness benchmark: sweeps utilization past saturation with and
// without admission control under a fixed fault plan, and records whether
// shedding bought the admitted transactions their deadlines back. The result
// is a small machine-readable JSON document (BENCH_fault.json in CI).
package main

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// faultBenchPlan is the fixed fault schedule of the sweep: keyed aborts with
// backoff plus one mid-run stall. Bursts are omitted so the utilization on
// the x-axis stays the configured one.
func faultBenchPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 0xB0B, AbortProb: 0.1, MaxRestarts: 2,
		BackoffBase: 0.5, BackoffCap: 4,
		Stalls: []fault.Window{{Start: 100, Duration: 10}},
	}
}

// faultBenchPoint is one (utilization, controller) cell, averaged over seeds.
type faultBenchPoint struct {
	Util                 float64 `json:"util"`
	Controller           string  `json:"controller"`
	Admitted             float64 `json:"admitted"`
	Shed                 float64 `json:"shed"`
	Aborts               float64 `json:"aborts"`
	Restarts             float64 `json:"restarts"`
	AvgWeightedTardiness float64 `json:"avg_weighted_tardiness"`
	MissRatio            float64 `json:"miss_ratio"`
}

// faultBenchResult is the BENCH_fault.json document.
type faultBenchResult struct {
	N     int               `json:"n"`
	Seeds int               `json:"seeds"`
	Utils []float64         `json:"utils"`
	Plan  *fault.Plan       `json:"plan"`
	Rows  []faultBenchPoint `json:"rows"`
	// SheddingWins reports whether, at every utilization past saturation,
	// the feasibility gate strictly lowered the admitted transactions'
	// weighted tardiness versus admitting everything — the property the
	// admission layer exists for.
	SheddingWins bool `json:"shedding_wins"`
}

// runFaultBench sweeps util × {no gate, feasibility gate, queue cap} under
// the fault plan, averaging each cell over seeds.
func runFaultBench(w io.Writer, n, seeds int) error {
	utils := []float64{1.1, 1.3, 1.5}
	specs := []string{"none", "slack", "queue:" + fmt.Sprint(n/10)}
	res := faultBenchResult{N: n, Seeds: seeds, Utils: utils, Plan: faultBenchPlan(), SheddingWins: true}

	awt := map[[2]int]float64{} // (util idx, spec idx) -> mean weighted tardiness
	for ui, util := range utils {
		for si, spec := range specs {
			var p faultBenchPoint
			p.Util, p.Controller = util, spec
			for s := 0; s < seeds; s++ {
				cfg := workload.Default(util, experimentSeed(s)).WithWorkflows(4, 1).WithWeights()
				cfg.N = n
				set, err := workload.Generate(cfg)
				if err != nil {
					return err
				}
				ctrl, err := admit.Parse(spec)
				if err != nil {
					return err
				}
				if _, isNone := ctrl.(admit.Unconditional); isNone {
					ctrl = nil
				}
				sum, err := sim.New(sim.Config{Faults: faultBenchPlan(), Admit: ctrl}).Run(set, core.New())
				if err != nil {
					return fmt.Errorf("util %.2f %s seed %d: %w", util, spec, s, err)
				}
				p.Admitted += float64(sum.N)
				p.Shed += float64(sum.Shed)
				p.Aborts += float64(sum.Aborts)
				p.Restarts += float64(sum.Restarts)
				p.AvgWeightedTardiness += sum.AvgWeightedTardiness
				p.MissRatio += sum.MissRatio
			}
			k := float64(seeds)
			p.Admitted /= k
			p.Shed /= k
			p.Aborts /= k
			p.Restarts /= k
			p.AvgWeightedTardiness /= k
			p.MissRatio /= k
			awt[[2]int{ui, si}] = p.AvgWeightedTardiness
			res.Rows = append(res.Rows, p)
		}
	}
	for ui := range utils {
		if awt[[2]int{ui, 1}] >= awt[[2]int{ui, 0}] { // slack vs none
			res.SheddingWins = false
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	for _, p := range res.Rows {
		fmt.Printf("fault-bench: util=%.2f %-10s admitted=%6.1f shed=%6.1f aborts=%5.1f avgWTard=%9.3f miss=%5.1f%%\n",
			p.Util, p.Controller, p.Admitted, p.Shed, p.Aborts, p.AvgWeightedTardiness, 100*p.MissRatio)
	}
	fmt.Printf("fault-bench: shedding_wins=%v\n", res.SheddingWins)
	if !res.SheddingWins {
		return fmt.Errorf("fault-bench: feasibility shedding did not lower admitted weighted tardiness at every util > 1")
	}
	return nil
}

// experimentSeed spaces the per-repetition seeds like the experiment
// harness does.
func experimentSeed(i int) uint64 {
	return 0xFA17 + uint64(i)*0x9e3779b97f4a7c15
}
