// Scale benchmark: one 100k-transaction run with the full observability
// pipeline enabled (event ring + span builder + windowed sketches +
// registry), recording ns/txn and allocs/txn into BENCH_scale.json and
// enforcing the overhead budgets — the bench exits non-zero on a budget
// regression, which is what lets scripts/check.sh and CI gate on it without
// any JSON parsing. ROADMAP item 2 names the instrumentation layer's cost
// the blocker to raising harness scale from ~1k to 100k–1M transactions;
// this document is the contract that keeps it cheap.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Enforced budgets. Allocation counts on the single-goroutine decision loop
// are deterministic, so the allocs/txn budget is tight: the enabled path
// allocates spans only on pool misses plus amortized container warm-up.
// The ns budget is generous — wall-clock on shared CI hardware is noisy —
// and exists to catch order-of-magnitude regressions, not percent drift.
// To re-baseline after an intentional change, run
// `go run ./cmd/asetsbench -scale-bench BENCH_scale.json`, inspect the new
// numbers, and update these constants in the same commit (see
// docs/OBSERVABILITY.md, "Overhead budgets").
const (
	// scaleBudgetObsAllocsPerTxn bounds the observability layer's own heap
	// allocations per transaction: enabled-run allocs/txn minus
	// baseline-run allocs/txn, so scheduler-internal allocations (audited
	// separately by asetslint's hotpath-alloc budget) don't mask or inflate
	// the instrumentation cost. Current measured value ≈ 0.63 (span pool
	// misses, amortized cell registration, segment warm-up).
	scaleBudgetObsAllocsPerTxn = 1.0
	// scaleBudgetOverheadPct bounds the enabled pipeline's ns/txn overhead
	// over the uninstrumented baseline. Current measured value ≈ 80%.
	scaleBudgetOverheadPct = 150.0
)

// scaleBenchResult is the BENCH_scale.json document.
type scaleBenchResult struct {
	N                    int     `json:"n"`
	BaselineNsPerTxn     float64 `json:"baseline_ns_per_txn"`
	EnabledNsPerTxn      float64 `json:"enabled_ns_per_txn"`
	OverheadPct          float64 `json:"overhead_pct"`
	BaselineAllocsPerTxn float64 `json:"baseline_allocs_per_txn"`
	EnabledAllocsPerTxn  float64 `json:"enabled_allocs_per_txn"`
	// ObsAllocsPerTxn is the enforced number: what observing costs on top
	// of the uninstrumented run, in allocations per transaction.
	ObsAllocsPerTxn    float64 `json:"obs_allocs_per_txn"`
	EnabledBytesPerTxn float64 `json:"enabled_bytes_per_txn"`
	// PoolHits/PoolMisses are the span free-list self-telemetry of the
	// alloc-measured enabled run.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// The budgets the run was gated against, and the verdict.
	BudgetAllocsPerTxn float64 `json:"budget_allocs_per_txn"`
	BudgetOverheadPct  float64 `json:"budget_overhead_pct"`
	Pass               bool    `json:"pass"`
}

// runScaleBench measures one large run uninstrumented and one with the full
// observability pipeline (the server's wiring: ring, span builder with
// windowed sketches and a Keep bound, registry), then gates the result
// against the budgets above. Timing interleaves the two configurations
// best-of-three; allocations are measured on a single run each, since
// allocation counts are deterministic.
func runScaleBench(w io.Writer, n int) error {
	cfg := workload.Default(0.9, 1).WithWorkflows(4, 1).WithWeights()
	cfg.N = n
	set, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	// The tumbling window scales with the replay so the windowed export
	// keeps a bounded cell count (~128 windows) at any n; a fixed width
	// would turn windows into near-per-completion cells at 100k
	// transactions and measure registration, not observation.
	var totalWork float64
	for _, t := range set.Txns {
		totalWork += t.Length
	}
	window := totalWork / 128

	baseline := func() sim.Config { return sim.Config{} }
	enabled := func(ov *obs.Overhead) sim.Config {
		reg := obs.NewRegistry()
		return sim.Config{
			Sink: obs.Tee(
				obs.NewRing(1024),
				obs.NewSpanBuilder(set, obs.SpanOptions{
					Metrics: reg, Window: window, Keep: 1024, Overhead: ov,
				}),
			),
			Metrics: reg,
		}
	}

	run := func(cfg sim.Config) (time.Duration, error) {
		start := time.Now()
		_, err := sim.New(cfg).Run(set, core.New())
		return time.Since(start), err
	}
	time3 := func(mk func() sim.Config) (time.Duration, error) {
		var best time.Duration
		for i := 0; i < 3; i++ {
			d, err := run(mk())
			if err != nil {
				return 0, err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	// Warm up both paths (page-in, registry construction patterns, JIT-ish
	// map growth), then time interleaved.
	if _, err := run(baseline()); err != nil {
		return err
	}
	if _, err := run(enabled(nil)); err != nil {
		return err
	}
	baseDur, err := time3(baseline)
	if err != nil {
		return err
	}
	enDur, err := time3(func() sim.Config { return enabled(nil) })
	if err != nil {
		return err
	}

	baseAllocs, _, err := measureAllocs(1, func() error {
		_, err := sim.New(baseline()).Run(set, core.New())
		return err
	})
	if err != nil {
		return err
	}
	ov := obs.NewOverhead()
	enAllocs, enBytes, err := measureAllocs(1, func() error {
		_, err := sim.New(enabled(ov)).Run(set, core.New())
		return err
	})
	if err != nil {
		return err
	}
	pool := ov.Stats()

	fn := float64(n)
	res := scaleBenchResult{
		N:                    n,
		BaselineNsPerTxn:     float64(baseDur.Nanoseconds()) / fn,
		EnabledNsPerTxn:      float64(enDur.Nanoseconds()) / fn,
		BaselineAllocsPerTxn: float64(baseAllocs) / fn,
		EnabledAllocsPerTxn:  float64(enAllocs) / fn,
		EnabledBytesPerTxn:   float64(enBytes) / fn,
		PoolHits:             pool.PoolHits,
		PoolMisses:           pool.PoolMisses,
		BudgetAllocsPerTxn:   scaleBudgetObsAllocsPerTxn,
		BudgetOverheadPct:    scaleBudgetOverheadPct,
	}
	res.ObsAllocsPerTxn = res.EnabledAllocsPerTxn - res.BaselineAllocsPerTxn
	res.OverheadPct = 100 * (res.EnabledNsPerTxn - res.BaselineNsPerTxn) / res.BaselineNsPerTxn
	res.Pass = res.ObsAllocsPerTxn <= scaleBudgetObsAllocsPerTxn &&
		res.OverheadPct <= scaleBudgetOverheadPct

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("scale-bench: n=%d baseline=%.0fns/txn enabled=%.0fns/txn (%+.2f%%) obs-allocs/txn=%.4f (budget %.2f) pool=%d/%d hit/miss\n",
		n, res.BaselineNsPerTxn, res.EnabledNsPerTxn, res.OverheadPct,
		res.ObsAllocsPerTxn, res.BudgetAllocsPerTxn, res.PoolHits, res.PoolMisses)
	if !res.Pass {
		return fmt.Errorf("overhead budget exceeded: obs allocs/txn %.4f (budget %.2f), overhead %.2f%% (budget %.0f%%)",
			res.ObsAllocsPerTxn, res.BudgetAllocsPerTxn, res.OverheadPct, scaleBudgetOverheadPct)
	}
	return nil
}
