// Span-pipeline overhead benchmark: quantifies what the causal-span builder
// and its windowed percentile sketches cost on the simulator hot path, and
// records the result as a small machine-readable JSON document
// (BENCH_span.json in CI).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// spanBenchResult is the BENCH_span.json document.
type spanBenchResult struct {
	N                  int     `json:"n"`                      // transactions per simulated run
	BaselineNsPerOp    int64   `json:"baseline_ns_per_op"`     // no instrumentation at all
	SpansNsPerOp       int64   `json:"spans_ns_per_op"`        // span builder, no sketches
	SpansSketchNsPerOp int64   `json:"spans_sketch_ns_per_op"` // span builder + windowed sketches
	SpansOverheadPct   float64 `json:"spans_overhead_pct"`
	SketchOverheadPct  float64 `json:"spans_sketch_overhead_pct"`
	// Per-configuration allocation profile of one full run (heap allocations
	// and bytes), so allocation regressions are visible independently of ns.
	BaselineAllocsPerOp    int64 `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp     int64 `json:"baseline_bytes_per_op"`
	SpansAllocsPerOp       int64 `json:"spans_allocs_per_op"`
	SpansBytesPerOp        int64 `json:"spans_bytes_per_op"`
	SpansSketchAllocsPerOp int64 `json:"spans_sketch_allocs_per_op"`
	SpansSketchBytesPerOp  int64 `json:"spans_sketch_bytes_per_op"`
	RunsPerBatch           int   `json:"runs_per_batch"`
	Batches                int   `json:"batches"`
}

// runSpanBench measures full sim.Run calls with the span pipeline off, on,
// and on with sketch observation. Batches interleave round-robin across the
// three configurations with min-of-runs selection, as in runObsBench, so
// machine-wide drift biases all configurations equally.
func runSpanBench(w io.Writer, n, reps int) error {
	cfg := workload.Default(0.9, 1).WithWorkflows(4, 1).WithWeights()
	cfg.N = n
	set, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	// The span builder holds per-run state, so each run builds a fresh one
	// (that cost is part of what is being measured).
	configs := []func() sim.Config{
		func() sim.Config { return sim.Config{} },
		func() sim.Config {
			return sim.Config{Sink: obs.NewSpanBuilder(set, obs.SpanOptions{})}
		},
		func() sim.Config {
			return sim.Config{Sink: obs.NewSpanBuilder(set, obs.SpanOptions{
				Metrics: obs.NewRegistry(), Window: 100,
			})}
		},
	}
	// Runs are timed individually with min-of-runs selection, and each batch
	// starts from a flushed GC state, for the reasons given on runObsBench's
	// batch runner.
	runBatch := func(mk func() sim.Config, runs int, best time.Duration) (time.Duration, error) {
		runtime.GC()
		for j := 0; j < runs; j++ {
			start := time.Now()
			if _, err := sim.New(mk()).Run(set, core.New()); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	warmupStart := time.Now()
	if _, err := runBatch(configs[0], 1, 0); err != nil {
		return err
	}
	warmup := time.Since(warmupStart)
	runs := int(50 * time.Millisecond / (warmup + 1))
	if runs < 10 {
		runs = 10
	}
	batches := 4 * reps

	best := make([]time.Duration, len(configs))
	for round := 0; round < batches; round++ {
		for i, mk := range configs {
			d, err := runBatch(mk, runs, best[i])
			if err != nil {
				return err
			}
			best[i] = d
		}
	}

	nsPerOp := func(i int) int64 { return best[i].Nanoseconds() }
	baseline, spans, sketch := nsPerOp(0), nsPerOp(1), nsPerOp(2)
	pct := func(v int64) float64 {
		return 100 * (float64(v) - float64(baseline)) / float64(baseline)
	}
	res := spanBenchResult{
		N:                  n,
		BaselineNsPerOp:    baseline,
		SpansNsPerOp:       spans,
		SpansSketchNsPerOp: sketch,
		SpansOverheadPct:   pct(spans),
		SketchOverheadPct:  pct(sketch),
		RunsPerBatch:       runs,
		Batches:            batches,
	}
	allocs := func(mk func() sim.Config) (int64, int64, error) {
		return measureAllocs(5, func() error {
			_, err := sim.New(mk()).Run(set, core.New())
			return err
		})
	}
	if res.BaselineAllocsPerOp, res.BaselineBytesPerOp, err = allocs(configs[0]); err != nil {
		return err
	}
	if res.SpansAllocsPerOp, res.SpansBytesPerOp, err = allocs(configs[1]); err != nil {
		return err
	}
	if res.SpansSketchAllocsPerOp, res.SpansSketchBytesPerOp, err = allocs(configs[2]); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("span-bench: n=%d baseline=%dns spans=%dns (%+.2f%%) spans+sketch=%dns (%+.2f%%)\n",
		n, baseline, spans, res.SpansOverheadPct, sketch, res.SketchOverheadPct)
	return nil
}
