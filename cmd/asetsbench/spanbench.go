// Span-pipeline overhead benchmark: quantifies what the causal-span builder
// and its windowed percentile sketches cost on the simulator hot path, and
// records the result as a small machine-readable JSON document
// (BENCH_span.json in CI).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// spanBenchResult is the BENCH_span.json document.
type spanBenchResult struct {
	N                  int     `json:"n"`                      // transactions per simulated run
	BaselineNsPerOp    int64   `json:"baseline_ns_per_op"`     // no instrumentation at all
	SpansNsPerOp       int64   `json:"spans_ns_per_op"`        // span builder, no sketches
	SpansSketchNsPerOp int64   `json:"spans_sketch_ns_per_op"` // span builder + windowed sketches
	SpansOverheadPct   float64 `json:"spans_overhead_pct"`
	SketchOverheadPct  float64 `json:"spans_sketch_overhead_pct"`
	RunsPerBatch       int     `json:"runs_per_batch"`
	Batches            int     `json:"batches"`
}

// runSpanBench measures full sim.Run calls with the span pipeline off, on,
// and on with sketch observation. Batches interleave round-robin across the
// three configurations with best-of selection, as in runObsBench, so
// machine-wide drift biases all configurations equally.
func runSpanBench(w io.Writer, n, reps int) error {
	cfg := workload.Default(0.9, 1).WithWorkflows(4, 1).WithWeights()
	cfg.N = n
	set, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	// The span builder holds per-run state, so each run builds a fresh one
	// (that cost is part of what is being measured).
	configs := []func() sim.Config{
		func() sim.Config { return sim.Config{} },
		func() sim.Config {
			return sim.Config{Sink: obs.NewSpanBuilder(set, obs.SpanOptions{})}
		},
		func() sim.Config {
			return sim.Config{Sink: obs.NewSpanBuilder(set, obs.SpanOptions{
				Metrics: obs.NewRegistry(), Window: 100,
			})}
		},
	}
	runBatch := func(mk func() sim.Config, runs int) (time.Duration, error) {
		start := time.Now()
		for j := 0; j < runs; j++ {
			if _, err := sim.New(mk()).Run(set, core.New()); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	warmup, err := runBatch(configs[0], 1)
	if err != nil {
		return err
	}
	runs := int(50 * time.Millisecond / (warmup + 1))
	if runs < 10 {
		runs = 10
	}
	batches := 4 * reps

	best := make([]time.Duration, len(configs))
	for round := 0; round < batches; round++ {
		for i, mk := range configs {
			d, err := runBatch(mk, runs)
			if err != nil {
				return err
			}
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}

	nsPerOp := func(i int) int64 { return best[i].Nanoseconds() / int64(runs) }
	baseline, spans, sketch := nsPerOp(0), nsPerOp(1), nsPerOp(2)
	pct := func(v int64) float64 {
		return 100 * (float64(v) - float64(baseline)) / float64(baseline)
	}
	res := spanBenchResult{
		N:                  n,
		BaselineNsPerOp:    baseline,
		SpansNsPerOp:       spans,
		SpansSketchNsPerOp: sketch,
		SpansOverheadPct:   pct(spans),
		SketchOverheadPct:  pct(sketch),
		RunsPerBatch:       runs,
		Batches:            batches,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Printf("span-bench: n=%d baseline=%dns spans=%dns (%+.2f%%) spans+sketch=%dns (%+.2f%%)\n",
		n, baseline, spans, res.SpansOverheadPct, sketch, res.SketchOverheadPct)
	return nil
}
