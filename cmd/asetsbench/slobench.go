// SLO benchmark: replays the Table-I workload generator across an overload
// sweep with the deterministic SLO engine attached and asks the question the
// alerting layer exists to answer: does the burn-rate alert fire while there
// is still error budget left to act on? For every overload cell the first
// alert_fire must precede the miss-ratio knee — the simulated time at which
// cumulative deadline misses exhaust the whole-run error budget (target miss
// ratio × N) — so the recorded lead time is strictly positive. The result is
// a machine-readable JSON document (BENCH_slo.json in CI) with three
// enforced properties: positive alert lead time on every overload cell,
// byte-identical serial and 4-worker decision-event streams including the
// alert events, and an SLO-engine allocation cost per transaction inside a
// budget of the same shape as the PR 7 observability budgets.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/txn"
	"repro/internal/workload"
)

const (
	// sloBenchWindow is the tumbling-window length: short enough that a
	// 1000-transaction replay spans a dozen-plus windows and the fast
	// burn-rate lookback reacts early in the ramp.
	sloBenchWindow = 50
	// sloBenchOverload is the utilization above which the lead-time gate
	// applies: below saturation the budget is never exhausted and there is
	// no knee to lead.
	sloBenchOverload = 1.0
	// sloBudgetAllocsPerTxn bounds what the SLO engine itself allocates per
	// transaction on top of an otherwise identical run: window-boundary
	// evaluation is O(classes) with zero steady-state allocations, so the
	// measured value is a handful of alert events and ring warm-up amortized
	// over the replay. Current measured value ≈ 0.02. Re-baseline like the
	// scale-bench budgets (docs/OBSERVABILITY.md, "Overhead budgets").
	sloBudgetAllocsPerTxn = 1.0
)

// sloBenchUtils sweeps the Table-I generator from just under saturation into
// deep overload, where the miss-ratio knee arrives earlier and earlier.
var sloBenchUtils = []float64{0.9, 1.1, 1.3, 1.5}

// sloBenchCell is one (util, seed) row of the sweep.
type sloBenchCell struct {
	Util float64 `json:"util"`
	Seed int     `json:"seed"`
	// Fires/Resolves count alert transitions in the cell's event stream.
	Fires    int `json:"fires"`
	Resolves int `json:"resolves"`
	// FirstAlert is the simulated time of the first alert_fire, -1 if the
	// engine never fired.
	FirstAlert float64 `json:"first_alert"`
	// KneeTime is the simulated time at which cumulative misses exhausted
	// the whole-run error budget, -1 if the budget survived the replay.
	KneeTime float64 `json:"knee_time"`
	// LeadTime = KneeTime - FirstAlert when both exist; the gate requires
	// it strictly positive on every overload cell.
	LeadTime  float64 `json:"lead_time"`
	MissRatio float64 `json:"miss_ratio"`
}

// sloBenchResult is the BENCH_slo.json document.
type sloBenchResult struct {
	N      int     `json:"n"`
	Seeds  int     `json:"seeds"`
	Window float64 `json:"window"`
	// Target is the light-class miss-ratio objective the knee is priced
	// against (the Table-I generator draws unweighted transactions, which
	// all land in the light class).
	Target float64        `json:"target"`
	Cells  []sloBenchCell `json:"cells"`
	// AlertEvents totals alert_fire/alert_resolve events across the serial
	// streams — the digest only proves something if it covers alerts.
	AlertEvents int `json:"alert_events"`
	// SLOAllocsPerTxn is the engine's own allocation cost: allocs/txn of an
	// SLO-enabled run minus an otherwise identical SLO-off run.
	SLOAllocsPerTxn    float64 `json:"slo_allocs_per_txn"`
	BudgetAllocsPerTxn float64 `json:"budget_allocs_per_txn"`
	// Deterministic reports that the serial and 4-worker runs produced
	// byte-identical decision-event streams, alert events included.
	Deterministic bool `json:"deterministic"`
	// AlertLeads is the gate: every overload cell fired before its knee.
	AlertLeads bool `json:"alert_leads"`
	Pass       bool `json:"pass"`
}

// sloBenchConfig returns the engine configuration for one run. cfg comes
// from the -slo flags when given, so the sweep can be re-priced against a
// custom objective; nil selects the default spec at the bench window.
func sloBenchConfig(flagCfg *slo.Config) *slo.Config {
	if flagCfg != nil {
		return flagCfg
	}
	return &slo.Config{Spec: slo.DefaultSpec(), Window: sloBenchWindow}
}

// sloBenchJobs builds one runner job per (util, seed) cell in util-major
// order, each with a private collector and registry.
func sloBenchJobs(n, seeds int, flagCfg *slo.Config) ([]runner.Job, []*obs.Collector) {
	jobs := make([]runner.Job, 0, len(sloBenchUtils)*seeds)
	cols := make([]*obs.Collector, 0, cap(jobs))
	for _, util := range sloBenchUtils {
		for s := 0; s < seeds; s++ {
			util := util
			col := &obs.Collector{}
			cols = append(cols, col)
			seed := experimentSeed(s)
			jobs = append(jobs, runner.Job{
				Gen: func(sd uint64) (*txn.Set, error) {
					cfg := workload.Default(util, sd)
					cfg.N = n
					return workload.Spec{Config: cfg}.Build()
				},
				Seed: &seed,
				New:  sched.NewEDF,
				Config: sim.Config{
					Sink:    col,
					Metrics: obs.NewRegistry(),
					SLO:     sloBenchConfig(flagCfg),
				},
				Label: fmt.Sprintf("slo-u%.1f-seed%d", util, s),
			})
		}
	}
	return jobs, cols
}

// sloBenchDigest hashes the jobs' decision-event streams in job order and
// counts the alert transitions they carry.
func sloBenchDigest(cols []*obs.Collector) ([32]byte, int, error) {
	var buf bytes.Buffer
	alerts := 0
	for _, col := range cols {
		for _, ev := range col.Events() {
			if ev.Kind == obs.KindAlertFire || ev.Kind == obs.KindAlertResolve {
				alerts++
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return [32]byte{}, 0, err
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return sha256.Sum256(buf.Bytes()), alerts, nil
}

// sloBenchCellFromStream folds one cell's event stream: first alert_fire
// time, the budget-exhaustion knee, and the final miss ratio.
func sloBenchCellFromStream(evs []obs.Event, n int, target float64) sloBenchCell {
	c := sloBenchCell{FirstAlert: -1, KneeTime: -1, LeadTime: -1}
	budget := target * float64(n)
	completions, misses := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindCompletion:
			completions++
			if ev.Tardiness > 0 {
				misses++
				if c.KneeTime < 0 && float64(misses) > budget {
					c.KneeTime = ev.Time
				}
			}
		case obs.KindAlertFire:
			c.Fires++
			if c.FirstAlert < 0 {
				c.FirstAlert = ev.Time
			}
		case obs.KindAlertResolve:
			c.Resolves++
		case obs.KindArrival, obs.KindDispatch, obs.KindPreempt,
			obs.KindDeadlineMiss, obs.KindShed, obs.KindAbort, obs.KindRestart,
			obs.KindAging, obs.KindModeSwitch, obs.KindStall,
			obs.KindDegradeEnter, obs.KindDegradeExit, obs.KindEject,
			obs.KindRecover, obs.KindFailover, obs.KindRoute,
			obs.KindValidateFail, obs.KindConflictDefer:
			// Only completions and alert transitions locate the knee.
		}
	}
	if completions > 0 {
		c.MissRatio = float64(misses) / float64(completions)
	}
	if c.FirstAlert >= 0 && c.KneeTime >= 0 {
		c.LeadTime = c.KneeTime - c.FirstAlert
	}
	return c
}

// sloBenchAllocs measures the engine's own allocation cost on the hottest
// overload cell: allocs/txn with the engine attached minus allocs/txn of an
// otherwise identical run without it.
func sloBenchAllocs(n int, flagCfg *slo.Config) (float64, error) {
	cfg := workload.Default(sloBenchUtils[len(sloBenchUtils)-1], experimentSeed(0))
	cfg.N = n
	set, err := workload.Generate(cfg)
	if err != nil {
		return 0, err
	}
	run := func(withSLO bool) (int64, error) {
		c := sim.Config{Metrics: obs.NewRegistry()}
		if withSLO {
			c.SLO = sloBenchConfig(flagCfg)
		}
		allocs, _, err := measureAllocs(1, func() error {
			_, err := sim.New(c).Run(set, sched.NewEDF())
			return err
		})
		return allocs, err
	}
	// Warm both paths once so pool and registry warm-up is off the books.
	if _, err := run(false); err != nil {
		return 0, err
	}
	if _, err := run(true); err != nil {
		return 0, err
	}
	off, err := run(false)
	if err != nil {
		return 0, err
	}
	on, err := run(true)
	if err != nil {
		return 0, err
	}
	return (float64(on) - float64(off)) / float64(n), nil
}

// runSLOBench executes the overload sweep twice (serial and 4 workers) to
// enforce the determinism contract, folds the per-cell lead times, measures
// the engine's allocation cost, and gates all three.
func runSLOBench(w io.Writer, n, seeds int, flagCfg *slo.Config) error {
	engCfg := sloBenchConfig(flagCfg)
	target := engCfg.Spec.Classes[0].MissRatio
	if target <= 0 {
		return fmt.Errorf("slo-bench: the light class needs a miss-ratio objective to price the knee")
	}

	run := func(workers int) ([]*obs.Collector, [32]byte, int, error) {
		jobs, cols := sloBenchJobs(n, seeds, flagCfg)
		if _, err := (runner.Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			return nil, [32]byte{}, 0, err
		}
		digest, alerts, err := sloBenchDigest(cols)
		return cols, digest, alerts, err
	}
	serialCols, serialDigest, alerts, err := run(1)
	if err != nil {
		return err
	}
	_, parallelDigest, _, err := run(4)
	if err != nil {
		return err
	}

	sloAllocs, err := sloBenchAllocs(n, flagCfg)
	if err != nil {
		return err
	}

	res := sloBenchResult{
		N: n, Seeds: seeds, Window: engCfg.Window, Target: target,
		AlertEvents:        alerts,
		SLOAllocsPerTxn:    sloAllocs,
		BudgetAllocsPerTxn: sloBudgetAllocsPerTxn,
		Deterministic:      serialDigest == parallelDigest && alerts > 0,
		AlertLeads:         true,
	}
	for i, util := range sloBenchUtils {
		for s := 0; s < seeds; s++ {
			c := sloBenchCellFromStream(serialCols[i*seeds+s].Events(), n, target)
			c.Util, c.Seed = util, s
			if util > sloBenchOverload && (c.Fires == 0 || c.KneeTime < 0 || c.LeadTime <= 0) {
				res.AlertLeads = false
			}
			res.Cells = append(res.Cells, c)
		}
	}
	res.Pass = res.Deterministic && res.AlertLeads && res.SLOAllocsPerTxn <= sloBudgetAllocsPerTxn

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	for _, c := range res.Cells {
		fmt.Printf("slo-bench: util=%.1f seed=%d fires=%2d resolves=%2d firstAlert=%8.1f knee=%8.1f lead=%8.1f miss=%5.1f%%\n",
			c.Util, c.Seed, c.Fires, c.Resolves, c.FirstAlert, c.KneeTime, c.LeadTime, 100*c.MissRatio)
	}
	fmt.Printf("slo-bench: deterministic=%v alert_leads=%v alert_events=%d slo-allocs/txn=%.4f (budget %.2f)\n",
		res.Deterministic, res.AlertLeads, res.AlertEvents, res.SLOAllocsPerTxn, res.BudgetAllocsPerTxn)
	if !res.Deterministic {
		return fmt.Errorf("slo-bench: serial and 4-worker decision-event streams differ (or carry no alert events)")
	}
	if !res.AlertLeads {
		return fmt.Errorf("slo-bench: an overload cell's first alert did not lead the miss-ratio knee")
	}
	if res.SLOAllocsPerTxn > sloBudgetAllocsPerTxn {
		return fmt.Errorf("slo-bench: engine allocation budget exceeded: %.4f allocs/txn (budget %.2f)",
			res.SLOAllocsPerTxn, sloBudgetAllocsPerTxn)
	}
	return nil
}
