// Command asetsbench regenerates the tables and figures of "Adaptive
// Scheduling of Web Transactions" (ICDE 2009) at full paper scale: 1000
// transactions per workload, five seeded runs per data point, full
// utilization sweeps.
//
// Usage:
//
//	asetsbench                         # run every experiment
//	asetsbench -figure fig10           # run one (fig8..fig17, tab1, alpha, abl-rule, abl-count)
//	asetsbench -figure fig14 -chart    # add an ASCII chart of the series
//	asetsbench -csv out/               # also write one CSV per figure
//	asetsbench -n 500 -seeds 3         # scale down for a quick look
//	asetsbench -list                   # list experiment IDs
//	asetsbench -obs-bench BENCH_obs.json   # instrumentation overhead
//	asetsbench -span-bench BENCH_span.json   # span + sketch overhead
//	asetsbench -fault-bench BENCH_fault.json -n 300   # overload shedding sweep
//	asetsbench -parallel-bench BENCH_parallel.json -n 300 -seeds 2   # pool speedup + bit-exactness
//	asetsbench -cluster-bench BENCH_cluster.json -n 300   # failover vs no-failover strawman
//	asetsbench -contention-bench BENCH_contention.json -n 300   # conflict-aware vs blind dispatch
//	asetsbench -slo-bench BENCH_slo.json -n 300   # alert lead time on the overload sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliflag"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/svgplot"
)

func main() {
	var (
		figure       = flag.String("figure", "all", "experiment id to run, or 'all'")
		n            = flag.Int("n", 1000, "transactions per workload (paper: 1000)")
		seeds        = flag.Int("seeds", 5, "seeded runs per data point (paper: 5)")
		parallel     = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		validate     = flag.Bool("validate", false, "validate every schedule against the trace checker")
		chart        = flag.Bool("chart", false, "render an ASCII chart under each table")
		csvDir       = flag.String("csv", "", "directory to write per-figure CSV files into")
		svgDir       = flag.String("svg", "", "directory to write per-figure SVG charts into")
		jsonDir      = flag.String("json", "", "directory to write per-figure JSON results into")
		list         = flag.Bool("list", false, "list experiment ids and exit")
		obsBench     = flag.String("obs-bench", "", "benchmark instrumentation overhead, write JSON to this path, and exit")
		scaleBench   = flag.String("scale-bench", "", "run the 100k-transaction observability scale benchmark with enforced budgets, write JSON to this path, and exit")
		scaleN       = flag.Int("scale-n", 100000, "transactions for -scale-bench")
		spanBench    = flag.String("span-bench", "", "benchmark span-builder and sketch overhead, write JSON to this path, and exit")
		faultBench   = flag.String("fault-bench", "", "sweep overload shedding vs open admission under a fault plan, write JSON to this path, and exit")
		parBench     = flag.String("parallel-bench", "", "benchmark the parallel runner against the serial path, write JSON to this path, and exit")
		clusterBench = flag.String("cluster-bench", "", "benchmark cluster failover vs a no-failover strawman under an instance crash, write JSON to this path, and exit")
		contBench    = flag.String("contention-bench", "", "benchmark conflict-aware dispatch vs blind ASETS* on Zipf-contended workloads, write JSON to this path, and exit")
		sloBench     = flag.String("slo-bench", "", "benchmark SLO alert lead time on the Table-I overload sweep, write JSON to this path, and exit")
	)
	seed := cliflag.AddSeed(flag.CommandLine)
	sloFlags := cliflag.AddSLO(flag.CommandLine)
	flag.Parse()
	if err := sloFlags.Load(); err != nil {
		cliflag.Fatal("asetsbench", err)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *obsBench != "" {
		f, err := os.Create(*obsBench)
		if err == nil {
			err = runObsBench(f, *n, 6)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: obs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scaleBench != "" {
		f, err := os.Create(*scaleBench)
		if err == nil {
			err = runScaleBench(f, *scaleN)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: scale-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *spanBench != "" {
		f, err := os.Create(*spanBench)
		if err == nil {
			err = runSpanBench(f, *n, 6)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: span-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *parBench != "" {
		f, err := os.Create(*parBench)
		if err == nil {
			err = runParallelBench(f, *n, min(*seeds, 2), *parallel, *seed)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: parallel-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterBench != "" {
		f, err := os.Create(*clusterBench)
		if err == nil {
			err = runClusterBench(f, *n, min(*seeds, 3))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: cluster-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *sloBench != "" {
		f, err := os.Create(*sloBench)
		if err == nil {
			err = runSLOBench(f, *n, min(*seeds, 3), sloFlags.Config())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: slo-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *contBench != "" {
		f, err := os.Create(*contBench)
		if err == nil {
			err = runContentionBench(f, *n, min(*seeds, 3))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: contention-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faultBench != "" {
		f, err := os.Create(*faultBench)
		if err == nil {
			err = runFaultBench(f, *n, min(*seeds, 3))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: fault-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{
		N:           *n,
		Parallelism: *parallel,
		Validate:    *validate,
		Seeds:       experiments.DefaultSeeds,
	}
	if *seeds < len(opts.Seeds) {
		opts.Seeds = opts.Seeds[:*seeds]
	} else if *seeds > len(opts.Seeds) {
		base := experiments.DefaultSeeds[0]
		for i := len(opts.Seeds); i < *seeds; i++ {
			opts.Seeds = append(opts.Seeds, base+uint64(i)*0x9e3779b97f4a7c15)
		}
	}

	ids := experiments.IDs()
	if *figure != "all" {
		if _, ok := experiments.Registry[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "asetsbench: unknown experiment %q (use -list)\n", *figure)
			os.Exit(2)
		}
		ids = []string{*figure}
	}

	for _, dir := range []string{*csvDir, *svgDir, *jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, id := range ids {
		res, err := experiments.Registry[id](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetsbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res.Figure.Table())
		fmt.Printf("paper:    %s\n", res.PaperClaim)
		for _, obs := range res.Observations {
			fmt.Printf("measured: %s\n", obs)
		}
		if *chart {
			fmt.Println()
			fmt.Println(res.Figure.Chart(64, 14))
		}
		fmt.Println(strings.Repeat("=", 72))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(res.Figure.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "asetsbench: writing %s: %v\n", path, err)
				failed = true
			}
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, id+".json")
			doc, err := json.MarshalIndent(struct {
				ID           string               `json:"id"`
				Title        string               `json:"title"`
				XLabel       string               `json:"x_label"`
				YLabel       string               `json:"y_label"`
				X            []float64            `json:"x"`
				Series       map[string][]float64 `json:"series"`
				PaperClaim   string               `json:"paper_claim"`
				Observations []string             `json:"observations"`
			}{
				ID:           res.Figure.ID,
				Title:        res.Figure.Title,
				XLabel:       res.Figure.XLabel,
				YLabel:       res.Figure.YLabel,
				X:            res.Figure.X,
				Series:       seriesMap(res.Figure),
				PaperClaim:   res.PaperClaim,
				Observations: res.Observations,
			}, "", "  ")
			if err == nil {
				err = os.WriteFile(path, doc, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "asetsbench: writing %s: %v\n", path, err)
				failed = true
			}
		}
		if *svgDir != "" {
			path := filepath.Join(*svgDir, id+".svg")
			var buf strings.Builder
			if err := svgplot.Render(&buf, res.Figure, svgplot.Options{}); err != nil {
				fmt.Fprintf(os.Stderr, "asetsbench: rendering %s: %v\n", path, err)
				failed = true
			} else if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "asetsbench: writing %s: %v\n", path, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// seriesMap flattens a figure's series for JSON output.
func seriesMap(fig *report.Figure) map[string][]float64 {
	out := make(map[string][]float64, len(fig.Series))
	for _, s := range fig.Series {
		out[s.Name] = s.Y
	}
	return out
}
