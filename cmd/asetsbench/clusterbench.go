// Cluster fault-tolerance benchmark: replays the same workload across a
// four-instance fleet three ways — no faults, mid-run instance crashes with
// failover, and the same crashes with failover disabled — and records
// whether the routing tier actually bought the crashed work its deadlines
// back. The result is a small machine-readable JSON document
// (BENCH_cluster.json in CI) with two enforced properties: the failover run
// stays within clusterBenchMissFactor of the no-crash baseline's effective
// miss ratio while the no-failover strawman exceeds it, and the routed
// decision streams of a serial and a 4-worker run are byte-identical.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// clusterBenchInstances is the fleet width of the benchmark; utilization is
// per instance, so the workload draws clusterBenchUtil times that load.
const (
	clusterBenchInstances = 4
	clusterBenchUtil      = 0.78
	// clusterBenchKMax loosens Table I's deadline slack (KMax 3) so that a
	// failed-over transaction, restarted from scratch on a survivor, can
	// still make its deadline — the regime where failover pays. The
	// no-failover strawman gets the identical workload and still counts
	// every crash-lost transaction as an effective miss.
	clusterBenchKMax = 6.0
	// clusterBenchMissFactor is the gate: crashing 1 in 4 instances must not
	// raise the effective miss ratio past this factor of the no-crash
	// baseline when failover is on — and must exceed it when failover is off,
	// or the cells were too easy to prove anything.
	clusterBenchMissFactor = 2.0
)

// clusterBenchPlans returns the per-instance fault schedule of the crash
// cells: fault domains 1 and 2 crash repeatedly on interleaved schedules,
// each crash destroying the domain's queued and in-flight work.
func clusterBenchPlans() []*fault.Plan {
	crashes := func(starts ...float64) *fault.Plan {
		p := &fault.Plan{}
		for _, at := range starts {
			p.Stalls = append(p.Stalls, fault.Window{Start: at, Duration: 10, Kind: fault.Crash})
		}
		return p
	}
	return []*fault.Plan{
		nil,
		crashes(80, 200, 320, 440),
		crashes(140, 260, 380, 500),
		nil,
	}
}

// clusterBenchRetry is the failover budget of the failover cell: a short
// backoff re-enqueues crash victims almost immediately — with KMax-loosened
// deadlines, restarting on a survivor right away preserves far more slack
// than waiting out the outage would.
func clusterBenchRetry() cluster.Retry {
	return cluster.Retry{Budget: 3, BackoffBase: 0.25, BackoffCap: 2}
}

// clusterBenchCell is one (scenario) row, averaged over seeds.
type clusterBenchCell struct {
	Scenario           string  `json:"scenario"` // baseline | failover | no-failover
	EffectiveMissRatio float64 `json:"effective_miss_ratio"`
	Misses             float64 `json:"misses"`
	Lost               float64 `json:"lost"`
	Failovers          float64 `json:"failovers"`
	Ejections          float64 `json:"ejections"`
	Recoveries         float64 `json:"recoveries"`
}

// clusterBenchResult is the BENCH_cluster.json document.
type clusterBenchResult struct {
	N          int                `json:"n"`
	Seeds      int                `json:"seeds"`
	Instances  int                `json:"instances"`
	Route      string             `json:"route"`
	Retry      cluster.Retry      `json:"retry"`
	MissFactor float64            `json:"miss_factor"`
	Cells      []clusterBenchCell `json:"cells"`
	// Deterministic reports that the serial and 4-worker runs produced
	// byte-identical routed decision streams.
	Deterministic bool `json:"deterministic"`
	// FailoverWins is the gate: failover holds the crash run within
	// MissFactor of the baseline's effective miss ratio while the
	// no-failover strawman exceeds it.
	FailoverWins bool `json:"failover_wins"`
}

// clusterBenchScenarios orders the three cells.
var clusterBenchScenarios = []string{"baseline", "failover", "no-failover"}

// clusterBenchJobs builds one runner job per (scenario, seed) cell, each
// with its own sink, registry and policy, in scenario-major order.
func clusterBenchJobs(n, seeds int) ([]runner.Job, []*obs.Collector) {
	jobs := make([]runner.Job, 0, len(clusterBenchScenarios)*seeds)
	cols := make([]*obs.Collector, 0, cap(jobs))
	for _, scenario := range clusterBenchScenarios {
		for s := 0; s < seeds; s++ {
			cfg := cluster.Config{
				Instances: clusterBenchInstances,
				Policy:    cluster.HealthWeighted{},
				Retry:     clusterBenchRetry(),
				Sink:      &obs.Collector{},
				Metrics:   obs.NewRegistry(),
			}
			if scenario != "baseline" {
				cfg.Faults = clusterBenchPlans()
			}
			cfg.NoFailover = scenario == "no-failover"
			cols = append(cols, cfg.Sink.(*obs.Collector))
			seed := experimentSeed(s)
			jobs = append(jobs, runner.Job{
				Gen: func(sd uint64) (*txn.Set, error) {
					wcfg := workload.Default(clusterBenchUtil*clusterBenchInstances, sd)
					wcfg.N = n
					wcfg.KMax = clusterBenchKMax
					return workload.Generate(wcfg)
				},
				Seed:    &seed,
				New:     func() sched.Scheduler { return core.New() },
				Cluster: &runner.ClusterJob{Config: cfg},
				Label:   fmt.Sprintf("cluster-%s-seed%d", scenario, s),
			})
		}
	}
	return jobs, cols
}

// clusterBenchDigest hashes the jobs' routed event streams in job order.
func clusterBenchDigest(cols []*obs.Collector) ([32]byte, error) {
	var buf bytes.Buffer
	for _, col := range cols {
		for _, ev := range col.Events() {
			b, err := json.Marshal(ev)
			if err != nil {
				return [32]byte{}, err
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// runClusterBench executes the three scenarios over seeds, twice (serial and
// 4 workers) to enforce the determinism contract, and gates on failover
// containing the crash damage.
func runClusterBench(w io.Writer, n, seeds int) error {
	run := func(workers int) ([]runner.Job, [32]byte, error) {
		jobs, cols := clusterBenchJobs(n, seeds)
		if _, err := (runner.Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			return nil, [32]byte{}, err
		}
		digest, err := clusterBenchDigest(cols)
		return jobs, digest, err
	}
	serialJobs, serialDigest, err := run(1)
	if err != nil {
		return err
	}
	_, parallelDigest, err := run(4)
	if err != nil {
		return err
	}

	res := clusterBenchResult{
		N: n, Seeds: seeds, Instances: clusterBenchInstances,
		Route: cluster.HealthWeighted{}.Name(), Retry: clusterBenchRetry(),
		MissFactor:    clusterBenchMissFactor,
		Deterministic: serialDigest == parallelDigest,
	}
	k := float64(seeds)
	for i, scenario := range clusterBenchScenarios {
		var c clusterBenchCell
		c.Scenario = scenario
		for s := 0; s < seeds; s++ {
			r := serialJobs[i*seeds+s].Cluster.Result
			c.EffectiveMissRatio += r.EffectiveMissRatio()
			c.Misses += float64(r.Misses)
			c.Lost += float64(r.Lost)
			c.Failovers += float64(r.Failovers)
			c.Ejections += float64(r.Ejections)
			c.Recoveries += float64(r.Recoveries)
		}
		c.EffectiveMissRatio /= k
		c.Misses /= k
		c.Lost /= k
		c.Failovers /= k
		c.Ejections /= k
		c.Recoveries /= k
		res.Cells = append(res.Cells, c)
	}
	baseline, failover, strawman := res.Cells[0], res.Cells[1], res.Cells[2]
	bound := clusterBenchMissFactor * baseline.EffectiveMissRatio
	res.FailoverWins = failover.EffectiveMissRatio <= bound && strawman.EffectiveMissRatio > bound

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	for _, c := range res.Cells {
		fmt.Printf("cluster-bench: %-12s effMiss=%6.2f%% misses=%6.1f lost=%5.1f failovers=%5.1f ejections=%4.1f recoveries=%4.1f\n",
			c.Scenario, 100*c.EffectiveMissRatio, c.Misses, c.Lost, c.Failovers, c.Ejections, c.Recoveries)
	}
	fmt.Printf("cluster-bench: deterministic=%v failover_wins=%v (bound %.2f%%)\n",
		res.Deterministic, res.FailoverWins, 100*bound)
	if !res.Deterministic {
		return fmt.Errorf("cluster-bench: serial and 4-worker routed event streams differ")
	}
	if !res.FailoverWins {
		return fmt.Errorf("cluster-bench: failover=%.4f strawman=%.4f vs bound %.4f (%.1fx baseline %.4f): failover did not contain the crash damage",
			failover.EffectiveMissRatio, strawman.EffectiveMissRatio, bound, clusterBenchMissFactor, baseline.EffectiveMissRatio)
	}
	return nil
}
