// Data-contention benchmark: replays the same Zipf-contended workloads under
// contention-blind ASETS* and its conflict-aware wrapper (CA-ASETS*) across a
// keyspace-size sweep — shrinking the keyspace raises the conflict rate — and
// records whether conflict-aware dispatch actually bought back the work that
// validation failures re-execute. The result is a small machine-readable JSON
// document (BENCH_contention.json in CI) with two enforced properties: past
// the contention knee CA-ASETS* strictly beats blind ASETS* on both the
// validate-fail count and the deadline miss ratio, and the decision-event
// streams of a serial and a 4-worker run are byte-identical.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

const (
	// contentionBenchServers runs the parallel-dispatch regime where
	// conflict-aware scheduling pays: with several servers holding open read
	// snapshots concurrently, a contention-blind policy dispatches
	// conflicting transactions side by side and re-executes them at commit,
	// while the CA wrapper routes non-conflicting work onto the free servers.
	contentionBenchServers = 4
	// contentionBenchUtil is the per-server target utilization: hot enough
	// that re-executed work visibly inflates tardiness, below saturation so
	// the wrapper has slack to reorder into.
	contentionBenchUtil = 0.85
	// contentionBenchAlpha, Reads and Writes shape the per-transaction key
	// draws: a strongly skewed keyspace with small read/write sets, the
	// regime of docs/CONTENTION.md.
	contentionBenchAlpha  = 0.9
	contentionBenchReads  = 4
	contentionBenchWrites = 2
	// contentionBenchKnee is the keyspace size at and below which the gate
	// applies: from here down, Zipf-hot rows make conflicts frequent enough
	// that conflict-aware dispatch must strictly win on both metrics.
	contentionBenchKnee = 4096
)

// contentionBenchKeys sweeps the keyspace from sparse toward hot-spot: fewer
// keys mean more read/write overlap and more commit-time validation
// failures. (The sweep stops well above the degenerate extreme where nearly
// every pair conflicts and no dispatch order can win — docs/CONTENTION.md.)
var contentionBenchKeys = []int{65536, 16384, 4096, 1024}

// contentionBenchPolicies orders the two policy cells per keyspace size.
var contentionBenchPolicies = []struct {
	Name string
	New  func() sched.Scheduler
}{
	{"asets", func() sched.Scheduler { return core.New() }},
	{"asets-ca", func() sched.Scheduler { return contention.NewDeferring(core.New(), 0) }},
}

// contentionBenchCell is one (keys, policy) row, averaged over seeds.
type contentionBenchCell struct {
	Keys          int     `json:"keys"`
	Policy        string  `json:"policy"`
	ValidateFails float64 `json:"validate_fails"`
	MissRatio     float64 `json:"miss_ratio"`
	AvgTardiness  float64 `json:"avg_tardiness"`
}

// contentionBenchResult is the BENCH_contention.json document.
type contentionBenchResult struct {
	N       int                   `json:"n"`
	Seeds   int                   `json:"seeds"`
	Servers int                   `json:"servers"`
	Util    float64               `json:"util"`
	Alpha   float64               `json:"alpha"`
	Reads   int                   `json:"reads"`
	Writes  int                   `json:"writes"`
	Knee    int                   `json:"knee"`
	Cells   []contentionBenchCell `json:"cells"`
	// Deterministic reports that the serial and 4-worker runs produced
	// byte-identical decision-event streams (validate_fail and conflict_defer
	// included).
	Deterministic bool `json:"deterministic"`
	// ConflictAwareWins is the gate: at every keyspace at or below the knee,
	// CA-ASETS* has strictly fewer validate fails and a strictly lower miss
	// ratio than blind ASETS*.
	ConflictAwareWins bool `json:"conflict_aware_wins"`
}

// contentionBenchJobs builds one runner job per (keys, policy, seed) cell,
// each with its own sink and registry, in keys-major order.
func contentionBenchJobs(n, seeds int) ([]runner.Job, []*obs.Collector) {
	jobs := make([]runner.Job, 0, len(contentionBenchKeys)*len(contentionBenchPolicies)*seeds)
	cols := make([]*obs.Collector, 0, cap(jobs))
	for _, keys := range contentionBenchKeys {
		for _, pol := range contentionBenchPolicies {
			for s := 0; s < seeds; s++ {
				keys, pol := keys, pol
				col := &obs.Collector{}
				cols = append(cols, col)
				seed := experimentSeed(s)
				jobs = append(jobs, runner.Job{
					Gen: func(sd uint64) (*txn.Set, error) {
						// Utilization is per server, so the workload draws
						// Servers times that load.
						cfg := workload.Default(contentionBenchUtil*contentionBenchServers, sd)
						cfg.N = n
						return workload.Spec{
							Config: cfg,
							Contention: &contention.Keyspace{
								Keys: keys, Alpha: contentionBenchAlpha,
								Reads: contentionBenchReads, Writes: contentionBenchWrites,
							},
						}.Build()
					},
					Seed: &seed,
					New:  pol.New,
					// A private collector per job so event streams can be
					// digested; a private registry so metric merges never race.
					Config: sim.Config{Servers: contentionBenchServers, Sink: col, Metrics: obs.NewRegistry()},
					Label:  fmt.Sprintf("contention-k%d-%s-seed%d", keys, pol.Name, s),
				})
			}
		}
	}
	return jobs, cols
}

// contentionBenchDigest hashes the jobs' decision-event streams in job order.
func contentionBenchDigest(cols []*obs.Collector) ([32]byte, error) {
	var buf bytes.Buffer
	for _, col := range cols {
		for _, ev := range col.Events() {
			b, err := json.Marshal(ev)
			if err != nil {
				return [32]byte{}, err
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// runContentionBench executes the sweep over seeds, twice (serial and 4
// workers) to enforce the determinism contract, and gates on conflict-aware
// dispatch beating the blind policy past the contention knee.
func runContentionBench(w io.Writer, n, seeds int) error {
	run := func(workers int) ([]*metrics.Summary, [32]byte, error) {
		jobs, cols := contentionBenchJobs(n, seeds)
		sums, err := (runner.Pool{Workers: workers}).Run(context.Background(), jobs)
		if err != nil {
			return nil, [32]byte{}, err
		}
		digest, err := contentionBenchDigest(cols)
		return sums, digest, err
	}
	serialSums, serialDigest, err := run(1)
	if err != nil {
		return err
	}
	_, parallelDigest, err := run(4)
	if err != nil {
		return err
	}

	res := contentionBenchResult{
		N: n, Seeds: seeds, Servers: contentionBenchServers,
		Util: contentionBenchUtil, Alpha: contentionBenchAlpha,
		Reads: contentionBenchReads, Writes: contentionBenchWrites,
		Knee:          contentionBenchKnee,
		Deterministic: serialDigest == parallelDigest,
	}
	k := float64(seeds)
	for i, keys := range contentionBenchKeys {
		for j, pol := range contentionBenchPolicies {
			c := contentionBenchCell{Keys: keys, Policy: pol.Name}
			for s := 0; s < seeds; s++ {
				sum := serialSums[(i*len(contentionBenchPolicies)+j)*seeds+s]
				c.ValidateFails += float64(sum.ValidateFails)
				c.MissRatio += sum.MissRatio
				c.AvgTardiness += sum.AvgTardiness
			}
			c.ValidateFails /= k
			c.MissRatio /= k
			c.AvgTardiness /= k
			res.Cells = append(res.Cells, c)
		}
	}
	res.ConflictAwareWins = true
	for i, keys := range contentionBenchKeys {
		blind := res.Cells[i*len(contentionBenchPolicies)]
		ca := res.Cells[i*len(contentionBenchPolicies)+1]
		if keys <= contentionBenchKnee &&
			(ca.ValidateFails >= blind.ValidateFails || ca.MissRatio >= blind.MissRatio) {
			res.ConflictAwareWins = false
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	for _, c := range res.Cells {
		fmt.Printf("contention-bench: keys=%-5d %-9s validateFails=%7.1f miss=%6.2f%% avgTard=%8.3f\n",
			c.Keys, c.Policy, c.ValidateFails, 100*c.MissRatio, c.AvgTardiness)
	}
	fmt.Printf("contention-bench: deterministic=%v conflict_aware_wins=%v (knee: keys <= %d)\n",
		res.Deterministic, res.ConflictAwareWins, contentionBenchKnee)
	if !res.Deterministic {
		return fmt.Errorf("contention-bench: serial and 4-worker decision-event streams differ")
	}
	if !res.ConflictAwareWins {
		return fmt.Errorf("contention-bench: conflict-aware dispatch did not strictly beat blind ASETS* on validate fails and miss ratio past the knee (keys <= %d)", contentionBenchKnee)
	}
	return nil
}
