package main

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestPrintStats(t *testing.T) {
	cfg := workload.Default(0.8, 1).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	set := workload.MustGenerate(cfg)
	var b strings.Builder
	printStats(&b, set)
	out := b.String()
	for _, want := range []string{
		"transactions:        200",
		"total work:",
		"mean length:",
		"dependency edges:",
		"workflows:",
		"offered load:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
