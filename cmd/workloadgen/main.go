// Command workloadgen emits Table I workloads as JSON for replay, external
// analysis, or debugging. The output loads back through asetssim -load and
// workload.ReadJSON.
//
// Usage:
//
//	workloadgen -util 0.8 -seed 3 > workload.json
//	workloadgen -util 0.9 -wf-len 5 -weights -o page_mix.json
//	workloadgen -util 0.5 -stats        # print distribution stats instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/txn"
	"repro/internal/workload"
)

func main() {
	var (
		util    = flag.Float64("util", 0.8, "target system utilization")
		n       = flag.Int("n", 1000, "number of transactions")
		kmax    = flag.Float64("kmax", 3.0, "max slack factor")
		alpha   = flag.Float64("alpha", 0.5, "zipf skew of transaction lengths")
		seed    = flag.Uint64("seed", 1, "generator seed")
		wfLen   = flag.Int("wf-len", 1, "max workflow length (1 = independent)")
		wfMem   = flag.Int("wf-membership", 1, "max workflows per transaction")
		weights = flag.Bool("weights", false, "draw weights from [1, 10]")
		batch   = flag.Bool("batch", false, "submit workflow members together")
		random  = flag.Bool("random-order", false, "randomize precedence order within chains")
		out     = flag.String("o", "", "output path (default stdout)")
		stats   = flag.Bool("stats", false, "print workload statistics instead of JSON")
		dot     = flag.Bool("dot", false, "emit the dependency graph in Graphviz DOT format instead of JSON")
	)
	flag.Parse()

	cfg := workload.Default(*util, *seed)
	cfg.N = *n
	cfg.KMax = *kmax
	cfg.Alpha = *alpha
	if *wfLen > 1 {
		cfg = cfg.WithWorkflows(*wfLen, *wfMem)
	}
	if *weights {
		cfg = cfg.WithWeights()
	}
	if *batch {
		cfg.Arrivals = workload.ArrivalsBatch
	}
	if *random {
		cfg.Order = workload.OrderRandom
	}

	set, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
		os.Exit(1)
	}

	if *stats {
		printStats(os.Stdout, set)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *dot {
		if err := txn.WriteDOT(w, set); err != nil {
			fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := workload.WriteJSON(w, set, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
		os.Exit(1)
	}
}

// printStats summarizes the generated workload's distributions so the
// Table I parameters can be eyeballed without external tooling.
func printStats(w io.Writer, set *txn.Set) {
	n := set.Len()
	lengths := make([]float64, 0, n)
	var work, weightSum float64
	deps := 0
	for _, t := range set.Txns {
		lengths = append(lengths, t.Length)
		work += t.Length
		weightSum += t.Weight
		deps += len(t.Deps)
	}
	sort.Float64s(lengths)
	horizon := set.Txns[n-1].Arrival
	for _, t := range set.Txns {
		if t.Arrival > horizon {
			horizon = t.Arrival
		}
	}
	wfs := txn.BuildWorkflows(set)
	maxLen := 0
	for _, wf := range wfs {
		if len(wf.Members) > maxLen {
			maxLen = len(wf.Members)
		}
	}
	fmt.Fprintf(w, "transactions:        %d\n", n)
	fmt.Fprintf(w, "total work:          %.1f time units\n", work)
	fmt.Fprintf(w, "length min/med/max:  %.0f / %.0f / %.0f\n",
		lengths[0], lengths[n/2], lengths[n-1])
	fmt.Fprintf(w, "mean length:         %.2f\n", work/float64(n))
	fmt.Fprintf(w, "mean weight:         %.2f\n", weightSum/float64(n))
	fmt.Fprintf(w, "dependency edges:    %d\n", deps)
	fmt.Fprintf(w, "workflows:           %d (longest %d members)\n", len(wfs), maxLen)
	fmt.Fprintf(w, "arrival horizon:     %.1f\n", horizon)
	if horizon > 0 {
		fmt.Fprintf(w, "offered load:        %.3f\n", work/horizon)
	}
}
