package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestBuildWorkloadGenerated(t *testing.T) {
	set, cfg, err := buildWorkload("", 200, 0.8, 3, 0.5, 7, 5, 2, true, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 200 {
		t.Fatalf("len = %d", set.Len())
	}
	if cfg == nil || cfg.Seed != 7 || cfg.MaxWorkflowLength != 5 || cfg.WeightMax != 10 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Arrivals != workload.ArrivalsBatch || cfg.Order != workload.OrderRandom {
		t.Fatalf("flags not applied: %+v", cfg)
	}
}

func TestBuildWorkloadIndependent(t *testing.T) {
	set, cfg, err := buildWorkload("", 100, 0.5, 1, 0.5, 1, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		if len(tx.Deps) != 0 || tx.Weight != 1 {
			t.Fatalf("independent workload has %v", tx)
		}
	}
	if cfg.MaxWorkflowLength != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestBuildWorkloadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	gen := workload.Default(0.6, 3)
	gen.N = 50
	set := workload.MustGenerate(gen)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteJSON(f, set, &gen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, cfg, err := buildWorkload(path, 0, 0, 0, 0, 0, 0, 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 50 || cfg == nil || cfg.Seed != 3 {
		t.Fatalf("loaded %d txns, cfg %+v", loaded.Len(), cfg)
	}
}

func TestBuildWorkloadMissingFile(t *testing.T) {
	if _, _, err := buildWorkload("/does/not/exist.json", 0, 0, 0, 0, 0, 0, 0, false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPolicyMapComplete(t *testing.T) {
	for name, factory := range policies {
		s := factory()
		if s == nil || s.Name() == "" {
			t.Errorf("policy %q broken", name)
		}
	}
	if len(policies) < 10 {
		t.Errorf("only %d policies registered", len(policies))
	}
}
