package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestBuildWorkloadGenerated(t *testing.T) {
	set, cfg, err := buildWorkload("", 200, 0.8, 3, 0.5, 7, 5, 2, true, true, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 200 {
		t.Fatalf("len = %d", set.Len())
	}
	if cfg == nil || cfg.Seed != 7 || cfg.MaxWorkflowLength != 5 || cfg.WeightMax != 10 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Arrivals != workload.ArrivalsBatch || cfg.Order != workload.OrderRandom {
		t.Fatalf("flags not applied: %+v", cfg)
	}
}

func TestBuildWorkloadIndependent(t *testing.T) {
	set, cfg, err := buildWorkload("", 100, 0.5, 1, 0.5, 1, 1, 1, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		if len(tx.Deps) != 0 || tx.Weight != 1 {
			t.Fatalf("independent workload has %v", tx)
		}
	}
	if cfg.MaxWorkflowLength != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestBuildWorkloadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	gen := workload.Default(0.6, 3)
	gen.N = 50
	set := workload.MustGenerate(gen)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteJSON(f, set, &gen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, cfg, err := buildWorkload(path, 0, 0, 0, 0, 0, 0, 0, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 50 || cfg == nil || cfg.Seed != 3 {
		t.Fatalf("loaded %d txns, cfg %+v", loaded.Len(), cfg)
	}
}

func TestBuildWorkloadMissingFile(t *testing.T) {
	if _, _, err := buildWorkload("/does/not/exist.json", 0, 0, 0, 0, 0, 0, 0, false, false, false, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunOneObsOutputs drives the -events/-spans/-timeline/-invariants paths
// end to end: all files must appear, parse, and the event and span streams
// must be byte-identical across two fixed-seed runs.
func TestRunOneObsOutputs(t *testing.T) {
	dir := t.TempDir()
	run := func(tag string) (eventsPath, spansPath, timelinePath string) {
		eventsPath = filepath.Join(dir, tag+".jsonl")
		spansPath = filepath.Join(dir, tag+"-spans.jsonl")
		timelinePath = filepath.Join(dir, tag+".json")
		cfg := workload.Default(0.9, 11)
		cfg.N = 120
		set := workload.MustGenerate(cfg)
		runOne(set, core.New(), 1, false, false, false,
			obsOutputs{eventsPath: eventsPath, spansPath: spansPath, timelinePath: timelinePath, validate: true},
			&cliflag.Robustness{AdmitSpec: "none"})
		return eventsPath, spansPath, timelinePath
	}
	ev1, sp1, tl := run("a")
	ev2, sp2, _ := run("b")

	b1, err := os.ReadFile(ev1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(ev2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("empty event stream")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("fixed-seed -events outputs differ")
	}
	sc := bufio.NewScanner(bytes.NewReader(b1))
	lines := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if _, ok := ev["kind"]; !ok {
			t.Fatalf("line %d missing kind: %s", lines+1, sc.Text())
		}
		lines++
	}
	if lines < 240 { // at least arrival+completion per transaction
		t.Fatalf("only %d event lines", lines)
	}

	s1, err := os.ReadFile(sp1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.ReadFile(sp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) == 0 {
		t.Fatal("empty span stream")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("fixed-seed -spans outputs differ")
	}
	spanLines := 0
	sc = bufio.NewScanner(bytes.NewReader(s1))
	for sc.Scan() {
		var sp struct {
			Txn       *int     `json:"txn"`
			Response  *float64 `json:"response"`
			Completed bool     `json:"completed"`
		}
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("span line %d: %v", spanLines+1, err)
		}
		if sp.Txn == nil || sp.Response == nil || !sp.Completed {
			t.Fatalf("span line %d malformed: %s", spanLines+1, sc.Text())
		}
		spanLines++
	}
	if spanLines != 120 {
		t.Fatalf("%d span lines, want 120", spanLines)
	}

	tb, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("timeline doc = %q with %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}

func TestPolicyMapComplete(t *testing.T) {
	for name, factory := range policies {
		s := factory()
		if s == nil || s.Name() == "" {
			t.Errorf("policy %q broken", name)
		}
	}
	if len(policies) < 10 {
		t.Errorf("only %d policies registered", len(policies))
	}
}
