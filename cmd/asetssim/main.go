// Command asetssim runs a single simulation of a generated (or loaded)
// workload under one scheduling policy and prints the performance summary —
// the interactive counterpart to asetsbench's full sweeps.
//
// Usage:
//
//	asetssim -policy asets -util 0.8
//	asetssim -policy edf -util 0.6 -kmax 1 -alpha 0.9 -seed 7
//	asetssim -policy asets -wf-len 5 -weights -trace
//	asetssim -policy ready -load workload.json
//	asetssim -compare -util 0.9           # run every policy on one workload
//	asetssim -events out.jsonl            # decision-event stream, one JSON per line
//	asetssim -spans out.jsonl             # per-transaction causal spans, one JSON per line
//	asetssim -timeline out.json           # Chrome trace-event timeline (Perfetto)
//	asetssim -faults plan.json -admit slack:2   # fault injection + shedding
//	asetssim -keys 64 -policy asets-ca    # data contention + conflict-aware dispatch
//
// -faults names a fault.Plan JSON file and -admit selects an admission
// controller (none, queue:N, slack[:tol], missratio[:enter,exit]); see
// docs/ROBUSTNESS.md. Both are validated before the run starts and compose
// with -compare (the plan is shared; each policy gets a fresh controller).
//
// -keys enables the data-contention model (docs/CONTENTION.md): every
// transaction draws a Zipf-skewed read/write set and the simulator switches
// to commit-time validation with deterministic re-execution. The -ca policy
// variants wrap their base policy with conflict-aware dispatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cliflag"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// policies maps CLI names to scheduler factories.
var policies = map[string]func() sched.Scheduler{
	"fcfs":  sched.NewFCFS,
	"edf":   sched.NewEDF,
	"srpt":  sched.NewSRPT,
	"ls":    sched.NewLS,
	"hdf":   sched.NewHDF,
	"hvf":   sched.NewHVF,
	"mix":   func() sched.Scheduler { return sched.NewMIX(0.5) },
	"asets": func() sched.Scheduler { return core.New() },
	"ready": func() sched.Scheduler { return core.NewReady() },
	"asets-sym": func() sched.Scheduler {
		return core.New(core.WithRule(core.RuleSymmetric), core.WithName("ASETS*(sym)"))
	},
	// Conflict-aware variants: the base policy behind a dispatch wrapper that
	// defers transactions predicted to conflict with busy work
	// (docs/CONTENTION.md). On keyless workloads they reduce to the base.
	"asets-ca": func() sched.Scheduler { return contention.NewDeferring(core.New(), 0) },
	"edf-ca":   func() sched.Scheduler { return contention.NewDeferring(sched.NewEDF(), 0) },
}

func policyNames() string {
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	var (
		policy   = flag.String("policy", "asets", "policy: "+policyNames())
		balTime  = flag.Float64("bal-time", 0, "balance-aware time activation rate (asets only)")
		balCount = flag.Float64("bal-count", 0, "balance-aware count activation rate (asets only)")
		util     = flag.Float64("util", 0.8, "target system utilization")
		n        = flag.Int("n", 1000, "number of transactions")
		kmax     = flag.Float64("kmax", 3.0, "max slack factor")
		alpha    = flag.Float64("alpha", 0.5, "zipf skew of transaction lengths")
		seed     = cliflag.AddSeed(flag.CommandLine)
		wfLen    = flag.Int("wf-len", 1, "max workflow length (1 = independent)")
		wfMem    = flag.Int("wf-membership", 1, "max workflows per transaction")
		weights  = flag.Bool("weights", false, "draw weights from [1, 10]")
		batch    = flag.Bool("batch", false, "submit workflow members together (Section II-B reading)")
		random   = flag.Bool("random-order", false, "randomize precedence order within chains")
		load     = flag.String("load", "", "load workload JSON instead of generating")
		save     = flag.String("save", "", "save the generated workload JSON to this path")
		doTrace  = flag.Bool("trace", false, "record, validate and summarize the schedule")
		events   = flag.String("events", "", "write the scheduler decision-event stream as JSONL to this path")
		spans    = flag.String("spans", "", "write per-transaction causal spans as JSONL to this path")
		timeline = flag.String("timeline", "", "write a Chrome trace-event timeline (Perfetto-loadable) to this path (implies -trace)")
		analyze  = flag.Bool("analyze", false, "print class breakdowns, wait decomposition and tardiness histogram (implies -trace)")
		gantt    = flag.Bool("gantt", false, "render an ASCII Gantt chart (small workloads only; implies -trace)")
		compare  = flag.Bool("compare", false, "run every policy on the same workload")
		invar    = flag.Bool("invariants", false, "validate the decision-event stream after the run (all policies); asets-family policies additionally audit ASETS* queue invariants at every decision point (O(n) per decision)")
		servers  = flag.Int("servers", 1, "number of identical backend servers")
		users    = flag.Int("users", 0, "closed-loop mode: simulate this many interactive sessions instead of Table I arrivals")
		patience = flag.Float64("patience", 0, "closed-loop page-abandonment bound (0 = off)")
	)
	report := flag.Bool("report", false, "print a post-run markdown report: per-class percentiles, alert timeline, error-budget spend, worst offenders")
	rob := cliflag.AddRobustness(flag.CommandLine)
	cont := cliflag.AddContention(flag.CommandLine)
	sloFlags := cliflag.AddSLO(flag.CommandLine)
	flag.Parse()

	// Validate the robustness and contention flags before any work, so a
	// typo is a crisp CLI error rather than a mid-run failure.
	if err := rob.Load(); err != nil {
		cliflag.Fatal("asetssim", err)
	}
	if err := cont.Load(); err != nil {
		cliflag.Fatal("asetssim", err)
	}
	if err := sloFlags.Load(); err != nil {
		cliflag.Fatal("asetssim", err)
	}

	if *users > 0 {
		if rob.Active() {
			fmt.Fprintln(os.Stderr, "asetssim: -faults/-admit apply to open-loop runs; the closed-loop simulator (-users) does not support them")
			os.Exit(2)
		}
		if cont.Active() {
			fmt.Fprintln(os.Stderr, "asetssim: -keys applies to open-loop runs; the closed-loop simulator (-users) does not support it")
			os.Exit(2)
		}
		if sloFlags.Active() || *report {
			fmt.Fprintln(os.Stderr, "asetssim: -slo/-report apply to open-loop runs; the closed-loop simulator (-users) does not support them")
			os.Exit(2)
		}
		runClosedLoop(*users, *util, *seed, *policy, *patience)
		return
	}
	if *load != "" && cont.Active() {
		fmt.Fprintln(os.Stderr, "asetssim: -keys draws read/write sets at generation time; it does not compose with -load (regenerate instead)")
		os.Exit(2)
	}

	set, cfg, err := buildWorkload(*load, *n, *util, *kmax, *alpha, *seed, *wfLen, *wfMem, *weights, *batch, *random, cont.Keyspace())
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetssim: %v\n", err)
		os.Exit(1)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err == nil {
			err = workload.WriteJSON(f, set, cfg)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: saving workload: %v\n", err)
			os.Exit(1)
		}
	}

	wantTrace := *doTrace || *analyze || *gantt
	outs := obsOutputs{eventsPath: *events, spansPath: *spans, timelinePath: *timeline, validate: *invar, report: *report, slo: sloFlags}

	if *compare {
		if outs.eventsPath != "" || outs.spansPath != "" || outs.timelinePath != "" {
			fmt.Fprintln(os.Stderr, "asetssim: -events/-spans/-timeline export a single run; drop -compare")
			os.Exit(2)
		}
		names := make([]string, 0, len(policies))
		for name := range policies {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			// With -invariants, every entry gets its decision-event stream
			// validated; the asets-family entries are additionally audited at
			// each decision point (the baselines have no ASETS* state).
			s := policies[name]()
			if *invar {
				s = wrapInvariants(s)
			}
			runOne(set, s, *servers, wantTrace, *analyze, *gantt, obsOutputs{validate: *invar}, rob)
		}
		return
	}

	factory, ok := policies[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "asetssim: unknown policy %q (choose from %s)\n", *policy, policyNames())
		os.Exit(2)
	}
	s := factory()
	if *balTime > 0 {
		s = core.New(core.WithTimeActivation(*balTime))
	}
	if *balCount > 0 {
		s = core.New(core.WithCountActivation(*balCount))
	}
	if *invar {
		s = wrapInvariants(s)
	}
	runOne(set, s, *servers, wantTrace, *analyze, *gantt, outs, rob)
}

// wrapInvariants adds per-decision invariant auditing when s is an
// asets-family scheduler, and returns s unchanged otherwise.
func wrapInvariants(s sched.Scheduler) sched.Scheduler {
	if star, ok := s.(*core.ASETSStar); ok {
		return core.NewChecked(star)
	}
	return s
}

func buildWorkload(load string, n int, util, kmax, alpha float64, seed uint64,
	wfLen, wfMem int, weights, batch, random bool, ks *contention.Keyspace) (*txn.Set, *workload.Config, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		set, cfg, err := workload.ReadJSON(f)
		return set, cfg, err
	}
	cfg := workload.Default(util, seed)
	cfg.N = n
	cfg.KMax = kmax
	cfg.Alpha = alpha
	if wfLen > 1 {
		cfg = cfg.WithWorkflows(wfLen, wfMem)
	}
	if weights {
		cfg = cfg.WithWeights()
	}
	if batch {
		cfg.Arrivals = workload.ArrivalsBatch
	}
	if random {
		cfg.Order = workload.OrderRandom
	}
	set, err := workload.Spec{Config: cfg, Contention: ks}.Build()
	return set, &cfg, err
}

// obsOutputs names the optional observability exports and checks of a run.
type obsOutputs struct {
	eventsPath   string       // JSONL decision-event stream
	spansPath    string       // JSONL per-transaction causal spans
	timelinePath string       // Chrome trace-event timeline (implies tracing)
	validate     bool         // run obs.Validate over the collected event stream
	report       bool         // render the post-run markdown report
	slo          *cliflag.SLO // SLO engine flags (nil-safe: inactive when unset)
}

func runOne(set *txn.Set, s sched.Scheduler, servers int, doTrace, analyze, gantt bool, outs obsOutputs, rob *cliflag.Robustness) {
	var rec *trace.Recorder
	cfg := sim.Config{Servers: servers, Faults: rob.Plan(), Admit: rob.Controller()}
	if outs.slo != nil {
		// A fresh config per run: -compare must not share engine state.
		cfg.SLO = outs.slo.Config()
	}
	if doTrace || outs.timelinePath != "" {
		rec = &trace.Recorder{}
		cfg.Recorder = rec
	}

	// Wire the requested event exports into one sink: the JSONL writer
	// streams to disk as the run progresses, the collector feeds the
	// timeline exporter and the event validator afterwards, and the span
	// builder folds the stream into per-transaction causal spans.
	var (
		sinks      []obs.Sink
		jw         *obs.JSONLWriter
		eventsFile *os.File
		col        *obs.Collector
		spb        *obs.SpanBuilder
	)
	if outs.eventsPath != "" {
		f, err := os.Create(outs.eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: %v\n", err)
			os.Exit(1)
		}
		eventsFile = f
		jw = obs.NewJSONLWriter(f)
		sinks = append(sinks, jw)
	}
	if outs.timelinePath != "" || outs.validate || outs.report {
		col = &obs.Collector{}
		sinks = append(sinks, col)
	}
	if outs.spansPath != "" || outs.timelinePath != "" {
		spb = obs.NewSpanBuilder(set, obs.SpanOptions{})
		sinks = append(sinks, spb)
	}
	if len(sinks) > 0 {
		cfg.Sink = obs.Tee(sinks...)
	}

	sm := sim.New(cfg)
	summary, err := sm.Run(set, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetssim: %s: %v\n", s.Name(), err)
		os.Exit(1)
	}

	if jw != nil {
		err := jw.Flush()
		if cerr := eventsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: writing %s: %v\n", outs.eventsPath, err)
			os.Exit(1)
		}
		fmt.Printf("  events: wrote %s\n", outs.eventsPath)
	}
	if outs.validate {
		evs := col.Events()
		if err := obs.Validate(evs); err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: %s: INVALID EVENT STREAM: %v\n", s.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("  events: %d validated OK\n", len(evs))
	}
	if outs.spansPath != "" {
		f, err := os.Create(outs.spansPath)
		if err == nil {
			err = obs.WriteSpans(f, spb.Spans())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: writing %s: %v\n", outs.spansPath, err)
			os.Exit(1)
		}
		fmt.Printf("  spans: wrote %s (%d spans)\n", outs.spansPath, len(spb.Spans()))
	}
	if outs.timelinePath != "" {
		f, err := os.Create(outs.timelinePath)
		if err == nil {
			err = obs.WriteTimelineFlows(f, rec.Slices, col.Events(), spb.Spans())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "asetssim: writing %s: %v\n", outs.timelinePath, err)
			os.Exit(1)
		}
		fmt.Printf("  timeline: wrote %s (load in Perfetto / chrome://tracing)\n", outs.timelinePath)
	}
	printSummary(s.Name(), summary)
	if st := sm.SLOState(); st != nil {
		fmt.Printf("  slo: alerts fired=%d resolved=%d active=%d worstBurn=%.2f budgetRemaining=%.0f%%\n",
			st.Fires, st.Resolves, st.ActiveAlerts, st.FastBurn, 100*st.BudgetRemaining)
	}
	if rob.Active() {
		fmt.Printf("  faults: admitted=%d shed=%d aborts=%d restarts=%d stalls=%d\n",
			summary.N, summary.Shed, summary.Aborts, summary.Restarts, summary.Stalls)
	}
	if contention.HasKeys(set) {
		fmt.Printf("  contention: validate_fails=%d\n", summary.ValidateFails)
	}
	if c, ok := s.(*core.Checked); ok {
		fmt.Printf("  invariants: %d decision points audited, 0 violations\n", c.Checks())
	}
	if rec != nil {
		if rob.Active() {
			// Aborted work re-executes and shed transactions never run, so
			// the slice-sum validation's invariants do not hold under a
			// fault plan or an admission controller.
			fmt.Printf("  schedule: %d slices, %d preemptions (validation skipped under -faults/-admit: re-executed and shed work break slice-sum invariants)\n",
				len(rec.Slices), rec.Preemptions(set))
		} else {
			if err := rec.ValidateN(set, servers); err != nil {
				fmt.Fprintf(os.Stderr, "asetssim: %s: INVALID SCHEDULE: %v\n", s.Name(), err)
				os.Exit(1)
			}
			fmt.Printf("  schedule: %d slices, %d preemptions, validated OK\n",
				len(rec.Slices), rec.Preemptions(set))
		}
	}
	if analyze {
		printAnalysis(set, rec)
	}
	if gantt {
		fmt.Print(analysis.Gantt(set, rec, 100))
	}
	if outs.report {
		opts := report.RunOptions{Set: set, Title: "Run report: " + s.Name()}
		if outs.slo != nil {
			if sc := outs.slo.Config(); sc != nil {
				opts.Spec = &sc.Spec
			}
		}
		fmt.Println()
		fmt.Print(report.GenerateRun(col.Events(), opts).Render())
	}
}

// printAnalysis renders the post-run diagnostics: per-class tardiness, the
// dependency/queueing/service wait decomposition, busy-period structure and
// a tardiness histogram.
func printAnalysis(set *txn.Set, rec *trace.Recorder) {
	fmt.Println("  class breakdown:")
	for _, c := range analysis.ByDependency(set) {
		fmt.Printf("    %-12s n=%-5d avgTard=%-9.3f maxTard=%-9.3f miss=%.1f%%\n",
			c.Class, c.N, c.AvgTardiness, c.MaxTardiness, 100*c.MissRatio)
	}
	dep, q, svc := analysis.SummarizeWaits(analysis.Waits(set, rec))
	fmt.Printf("  mean response decomposition: depWait=%.3f queueing=%.3f service=%.3f\n", dep, q, svc)
	periods := analysis.Periods(rec)
	busy := 0
	for _, p := range periods {
		if p.Busy {
			busy++
		}
	}
	fmt.Printf("  busy periods: %d (of %d periods)\n", busy, len(periods))
	h := metrics.NewHistogram(2)
	for _, t := range set.Txns {
		h.Add(t.Tardiness())
	}
	fmt.Println("  tardiness histogram:")
	for _, line := range strings.Split(strings.TrimRight(h.String(), "\n"), "\n") {
		fmt.Println("    " + line)
	}
}

func printSummary(name string, s *metrics.Summary) {
	fmt.Printf("%-22s avgTard=%-10.3f avgWTard=%-10.3f maxWTard=%-10.3f miss=%5.1f%%  resp=%-9.3f p95=%-9.3f util=%.3f\n",
		name, s.AvgTardiness, s.AvgWeightedTardiness, s.MaxWeightedTardiness,
		100*s.MissRatio, s.AvgResponseTime, s.TardinessP95, s.Utilization)
}

// runClosedLoop simulates interactive sessions (the introduction's users)
// and prints per-policy page statistics.
func runClosedLoop(users int, util float64, seed uint64, policy string, patience float64) {
	factory, ok := policies[policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "asetssim: unknown policy %q\n", policy)
		os.Exit(2)
	}
	cfg := workload.DefaultSessions(users, util, seed)
	set, sessions, err := workload.GenerateSessions(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetssim: %v\n", err)
		os.Exit(1)
	}
	res, err := sim.New(sim.Config{Patience: patience}).RunClosedLoop(set, sessions, factory())
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetssim: %v\n", err)
		os.Exit(1)
	}
	pages := 0
	var sumLat, maxLat float64
	for _, sess := range res.PageLatencies {
		for _, lat := range sess {
			pages++
			sumLat += lat
			if lat > maxLat {
				maxLat = lat
			}
		}
	}
	fmt.Printf("%-12s users=%d pages=%d avgPageLat=%.2f maxPageLat=%.2f avgTard=%.3f abandon=%.1f%%\n",
		factory().Name(), users, pages, sumLat/float64(pages), maxLat,
		res.Summary.AvgTardiness, 100*res.AbandonRate)
}
