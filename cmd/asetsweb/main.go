// Command asetsweb serves a live dashboard of an ASETS*-scheduled
// transaction stream: a Table I workload replays in (scaled) real time
// through the online executor while HTTP endpoints report queue state,
// tardiness and recent completions.
//
// Usage:
//
//	asetsweb -addr :8080 -policy asets -util 0.9 -scale 5ms
//	asetsweb -faults plan.json -admit slack:2   # fault injection + shedding
//	asetsweb -instances 4 -route weighted -wf-len 1   # fault-tolerant fleet
//	asetsweb -slo default -slo-window 50   # SLO burn-rate alerts on SSE + /metrics
//	asetsweb -pprof            # additionally serve /debug/pprof/
//	# then open http://localhost:8080/
//
// Endpoints: / (dashboard), /api/stats, /api/recent, /api/workload,
// POST /api/submit (admission gate: 202 or 429 + Retry-After),
// /metrics (Prometheus text), /events (recent decisions), /healthz
// (503 "degraded" while the admission controller degrades), and — with
// -pprof — the net/http/pprof profiling suite under /debug/pprof/.
//
// -faults names a fault.Plan JSON file (see docs/ROBUSTNESS.md for the
// format); -admit selects an admission controller (none, queue:N,
// slack[:tol], missratio[:enter,exit]). Both are validated before the
// server binds its port.
//
// -slo attaches the deterministic SLO alert engine (docs/OBSERVABILITY.md,
// "SLOs and alerting"): alert_fire/alert_resolve events ride /events and the
// SSE stream, per-class burn gauges land on /metrics, and — in fleet mode —
// GET /api/fleet serves the aggregate rollup while /healthz degrades when
// any instance burns its fast window.
//
// -instances N (N > 1) serves the fault-tolerant cluster tier instead of the
// single backend: the workload is routed (-route) across N fault domains,
// -faults crashes instance 0 while the survivors absorb the failover under
// the -retry-budget/-retry-backoff budget, /healthz answers per-instance
// circuit-breaker detail (?instance=K), and /metrics grows the
// asets_cluster_* failover counters. The fleet routes independent
// transactions only, so it requires -wf-len 1 (docs/ROBUSTNESS.md,
// "Cluster fault tolerance").
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/cliflag"
	"repro/internal/cluster"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/workload"
)

// replay is the interface the serve/restart loop needs from either tier —
// the single-backend server.Server or the fleet's server.ClusterServer.
type replay interface {
	http.Handler
	Start(ctx context.Context) (<-chan struct{}, error)
	Wait(ctx context.Context) error
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		policy  = flag.String("policy", "asets", "asets, ready, edf, srpt, hdf, fcfs, ls, asets-ca, edf-ca")
		util    = flag.Float64("util", 0.9, "target utilization")
		n       = flag.Int("n", 1000, "number of transactions")
		seed    = cliflag.AddSeed(flag.CommandLine)
		wfLen   = flag.Int("wf-len", 5, "max workflow length (1 = independent)")
		weights = flag.Bool("weights", true, "draw weights from [1, 10]")
		scale   = flag.Duration("scale", 5*time.Millisecond, "wall-clock duration of one simulated time unit")
		loop    = flag.Bool("loop", true, "restart the replay with a fresh seed when it finishes")
		pprofOn = flag.Bool("pprof", false, "serve the net/http/pprof handlers under /debug/pprof/")
		logDet  = flag.Bool("log-deterministic", false, "drop wall-clock timestamps from log records (fixed-seed runs log byte-identically)")
	)
	rob := cliflag.AddRobustness(flag.CommandLine)
	cl := cliflag.AddCluster(flag.CommandLine)
	cont := cliflag.AddContention(flag.CommandLine)
	sloFlags := cliflag.AddSLO(flag.CommandLine)
	flag.Parse()

	// Structured logging shares field keys with the span/event exports, so a
	// txn=17 in a log line greps against the same key in span JSONL and SSE
	// frames; see internal/obs/log.go.
	logger := obs.NewLogger(os.Stderr, *logDet)

	factories := map[string]func() sched.Scheduler{
		"asets": func() sched.Scheduler { return core.New() },
		"ready": func() sched.Scheduler { return core.NewReady() },
		"edf":   sched.NewEDF,
		"srpt":  sched.NewSRPT,
		"hdf":   sched.NewHDF,
		"fcfs":  sched.NewFCFS,
		"ls":    sched.NewLS,
		// Conflict-aware variants for contended workloads (-keys); on keyless
		// workloads they reduce to the base policy (docs/CONTENTION.md).
		"asets-ca": func() sched.Scheduler { return contention.NewDeferring(core.New(), 0) },
		"edf-ca":   func() sched.Scheduler { return contention.NewDeferring(sched.NewEDF(), 0) },
	}
	factory, ok := factories[*policy]
	if !ok {
		logger.Error("unknown policy", obs.LogKeyPolicy, *policy)
		os.Exit(2)
	}

	// Validate fault/admission/cluster flags before binding the port, so a
	// typo is a crisp CLI error rather than a replay-goroutine failure.
	if err := rob.Load(); err != nil {
		cliflag.Fatal("asetsweb", err)
	}
	if err := cl.Load(); err != nil {
		cliflag.Fatal("asetsweb", err)
	}
	if err := cont.Load(); err != nil {
		cliflag.Fatal("asetsweb", err)
	}
	if err := sloFlags.Load(); err != nil {
		cliflag.Fatal("asetsweb", err)
	}
	if cont.Active() && *wfLen > 1 {
		cliflag.Fatal("asetsweb", errors.New("contention: read/write sets apply to independent transactions; pass -wf-len 1 with -keys"))
	}
	if cl.Active() {
		if *wfLen > 1 {
			cliflag.Fatal("asetsweb", errors.New("cluster: the fleet routes independent transactions only; pass -wf-len 1 with -instances > 1"))
		}
		if plan := rob.Plan(); plan != nil && len(plan.Bursts) > 0 {
			cliflag.Fatal("asetsweb", errors.New("cluster: flash-crowd bursts are a workload transform, not an instance fault; drop them from the -faults plan"))
		}
	}

	build := func(seed uint64) (replay, error) {
		// -util is per backend: the fleet draws Instances times the single
		// server's load so each fault domain sees the requested utilization.
		cfg := workload.Default(*util*float64(cl.Instances), seed)
		cfg.N = *n
		if *wfLen > 1 {
			cfg = cfg.WithWorkflows(*wfLen, 1)
		}
		if *weights {
			cfg = cfg.WithWeights()
		}
		set, err := workload.Spec{Config: cfg, Contention: cont.Keyspace()}.Build()
		if err != nil {
			return nil, err
		}
		// Controllers carry feedback state, so each replay gets a fresh one;
		// the fault plan is immutable and shared (each executor builds its
		// own injector from it).
		if !cl.Active() {
			return server.New(factory(), set, &cfg, executor.Options{
				TimeScale: *scale,
				Faults:    rob.Plan(),
				Admit:     rob.Controller(),
				SLO:       sloFlags.Config(),
			}), nil
		}
		// Fleet mode: the -faults plan crashes fault domain 0; the survivors
		// absorb its failover. Policies and controllers carry state, so each
		// replay builds fresh ones.
		var plans []*fault.Plan
		if rob.Plan() != nil {
			plans = make([]*fault.Plan, cl.Instances)
			plans[0] = rob.Plan()
		}
		var newAdmit func() admit.Controller
		if rob.Controller() != nil {
			newAdmit = rob.Controller
		}
		return server.NewCluster(cluster.Config{
			Instances:    cl.Instances,
			Policy:       cl.Policy(),
			NewScheduler: factory,
			NewAdmit:     newAdmit,
			Faults:       plans,
			Retry:        cl.Retry(),
			SLO:          sloFlags.Config(),
		}, set, cluster.FleetOptions{TimeScale: *scale}), nil
	}

	srv, err := build(*seed)
	if err != nil {
		logger.Error("building workload", obs.LogKeyErr, err.Error(), obs.LogKeySeed, *seed)
		os.Exit(1)
	}

	// ctx ends on SIGINT/SIGTERM; it cancels the replay and triggers the
	// HTTP server's graceful shutdown below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// current always points at the live server so the handler can swap in a
	// new replay when -loop is set.
	current := make(chan replay, 1)
	current <- srv
	var handler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := <-current
		current <- s
		s.ServeHTTP(w, r)
	})
	if *pprofOn {
		// Opt-in profiling: the handlers are registered on this private mux
		// only (importing net/http/pprof also touches http.DefaultServeMux,
		// but that mux is never served here).
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
	}

	// The replay loop is joined via loopDone before main returns. Each
	// replay runs under ctx, so cancellation both stops the executor and
	// unblocks Wait.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s := srv
		nextSeed := *seed
		for {
			if _, err := s.Start(ctx); err != nil {
				logger.Error("starting replay", obs.LogKeyErr, err.Error())
				return
			}
			if err := s.Wait(ctx); err != nil {
				if ctx.Err() == nil {
					logger.Error("replay failed", obs.LogKeyErr, err.Error())
				}
				return
			}
			if !*loop || ctx.Err() != nil {
				return
			}
			nextSeed++
			ns, err := build(nextSeed)
			if err != nil {
				logger.Error("building workload", obs.LogKeyErr, err.Error(), obs.LogKeySeed, nextSeed)
				return
			}
			logger.Info("replay restarted", obs.LogKeySeed, nextSeed)
			<-current
			current <- ns
			s = ns
		}
	}()

	logger.Info("serving dashboard",
		obs.LogKeyPolicy, *policy, "n", *n, "util", *util, "addr", *addr, obs.LogKeySeed, *seed,
		"instances", cl.Instances, "route", cl.RouteSpec)

	// Hardened server config: slowloris-resistant header/body deadlines and
	// an idle cap for keep-alive connections. The longest handler is the
	// dashboard render, far under a second, so 10s of request budget is
	// generous; the POST body limit is enforced per-handler with
	// http.MaxBytesReader.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- hs.ListenAndServe()
	}()

	exitCode := 0
	select {
	case err := <-serveErr:
		// Listener failed outright (e.g. port in use).
		logger.Error("listener failed", obs.LogKeyErr, err.Error(), "addr", *addr)
		exitCode = 1
		stop()
	case <-ctx.Done():
		// Signal received: stop accepting requests, drain in-flight ones,
		// then join the serve goroutine.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown failed", obs.LogKeyErr, err.Error())
			exitCode = 1
		}
		cancel()
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", obs.LogKeyErr, err.Error())
			exitCode = 1
		}
	}

	<-loopDone
	os.Exit(exitCode)
}
