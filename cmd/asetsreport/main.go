// Command asetsreport renders a post-run markdown report from a decision-
// event stream captured with asetssim -events (or any JSONL sink of the same
// format): per-class percentile tables, the SLO alert timeline, error-budget
// spend and the worst-offender transactions.
//
// Usage:
//
//	asetssim -policy edf -util 1.2 -events run.jsonl -save wl.json
//	asetsreport -events run.jsonl                     # aggregate report
//	asetsreport -events run.jsonl -workload wl.json   # per-class tables
//	asetsreport -events run.jsonl -workload wl.json -slo default
//
// -workload attaches the replayed workload so transactions can be grouped
// into weight classes; -slo prices the error budget against the same spec
// grammar the simulators take (docs/OBSERVABILITY.md, "SLOs and alerting").
// The report is a pure function of its inputs: the same stream renders
// byte-identically on every invocation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflag"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/slo"
	"repro/internal/txn"
	"repro/internal/workload"
)

func main() {
	var (
		events    = flag.String("events", "", "decision-event JSONL file (required)")
		wlPath    = flag.String("workload", "", "workload JSON (asetssim -save) for per-class grouping")
		specText  = flag.String("slo", "", `SLO spec for error-budget pricing: "default" or e.g. "light:miss=0.05"`)
		offenders = flag.Int("offenders", 10, "rows in the worst-offender table")
		title     = flag.String("title", "", "report heading (default derived from the events path)")
		out       = flag.String("o", "", "write the report here instead of stdout")
	)
	flag.Parse()
	if *events == "" {
		cliflag.Fatal("asetsreport", fmt.Errorf("-events is required"))
	}

	var spec *slo.Spec
	if *specText != "" {
		s, err := slo.ParseSpec(*specText)
		if err != nil {
			cliflag.Fatal("asetsreport", err)
		}
		spec = &s
	}

	f, err := os.Open(*events)
	if err != nil {
		fail(err)
	}
	evs, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	var set *txn.Set
	if *wlPath != "" {
		wf, err := os.Open(*wlPath)
		if err != nil {
			fail(err)
		}
		set, _, err = workload.ReadJSON(wf)
		wf.Close()
		if err != nil {
			fail(err)
		}
	}

	heading := *title
	if heading == "" {
		heading = "Run report: " + *events
	}
	doc := report.GenerateRun(evs, report.RunOptions{
		Set: set, Spec: spec, Offenders: *offenders, Title: heading,
	}).Render()

	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "asetsreport: %v\n", err)
	os.Exit(1)
}
