// Command asetslint runs the repository's determinism and correctness
// analyzers (internal/lint) over the module and prints findings as
//
//	file:line:col: analyzer: message
//
// exiting 1 when there are findings, 2 on usage or load errors, and 0 on a
// clean tree. The analyzer battery and the policy behind it are documented
// in docs/DETERMINISM.md; per-line suppression uses
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// Usage:
//
//	asetslint [-list] [-json] [dir]
//
// dir defaults to the current directory; the conventional "./..." spelling
// is accepted and means the module rooted at ".". The whole module is always
// analyzed — analyzers reason about cross-package facts (enum declarations,
// clock seams, the hot-path call graph), so there is no per-package mode.
// With -json, findings are emitted as a JSON array on stdout (empty array
// when clean) for machine consumers; the exit status is unchanged.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer battery and scopes, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: asetslint [-list] [-json] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-26s %s\n", a.Name, a.Doc)
			if len(a.Include) > 0 {
				fmt.Printf("%-26s   scope: %s\n", "", strings.Join(a.Include, ", "))
			}
			if len(a.Exclude) > 0 {
				fmt.Printf("%-26s   excluded: %s\n", "", strings.Join(a.Exclude, ", "))
			}
		}
		return
	}

	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		arg := flag.Arg(0)
		// Accept the go-tool spelling "dir/..." for the module at dir.
		arg = strings.TrimSuffix(arg, "...")
		arg = strings.TrimSuffix(arg, string(filepath.Separator))
		arg = strings.TrimSuffix(arg, "/")
		if arg != "" {
			root = arg
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	root, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetslint: %v\n", err)
		os.Exit(2)
	}

	fset, pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asetslint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, analyzers)
	for i := range diags {
		rel, err := filepath.Rel(mustGetwd(), diags[i].Pos.Filename)
		if err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "asetslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asetslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
