// Stockdash reproduces the paper's Section II-B application scenario: a
// personalized stock dashboard whose page is materialized by a workflow of
// four web transactions,
//
//	T1 (all stock prices)  ->  T2 (portfolio join)  ->  T3 (portfolio value)
//	                                               \->  T4 (price alerts)
//
// where the *alerts* fragment (T4) has the tightest SLA even though it sits
// at the end of the dependency chain — precedence order and deadline order
// conflict, exactly the case workflow-level ASETS* is built for. A second
// user's independent weather fragment competes for the backend.
//
//	go run ./examples/stockdash
package main

import (
	"fmt"

	"repro"
)

func page() *repro.Set {
	txns := []*repro.Transaction{
		// T1: scan of all traded stocks — long, loose SLA.
		{ID: 0, Arrival: 0, Deadline: 60, Length: 12, Weight: 1},
		// T2: join against the user's portfolio — depends on T1.
		{ID: 1, Arrival: 0, Deadline: 30, Length: 4, Weight: 2, Deps: []repro.ID{0}},
		// T3: aggregate portfolio value — depends on T2.
		{ID: 2, Arrival: 0, Deadline: 40, Length: 2, Weight: 3, Deps: []repro.ID{1}},
		// T4: price alerts — depends on T2 but has the EARLIEST deadline
		// and the highest weight: the user wants alerts first.
		{ID: 3, Arrival: 0, Deadline: 20, Length: 1, Weight: 10, Deps: []repro.ID{1}},
		// Another user's independent weather fragment.
		{ID: 4, Arrival: 0, Deadline: 25, Length: 9, Weight: 1},
	}
	set, err := repro.NewSet(txns)
	if err != nil {
		panic(err)
	}
	return set
}

var names = []string{"T1 stock scan", "T2 portfolio join", "T3 portfolio value", "T4 price alerts", "T5 weather (other user)"}

func run(policy repro.Scheduler) {
	set := page()
	rec := &repro.TraceRecorder{}
	repro.MustRun(set, policy, repro.SimConfig{Recorder: rec})
	if err := rec.Validate(set); err != nil {
		panic(err)
	}

	fmt.Printf("--- %s ---\n", policy.Name())
	fmt.Println("execution order:")
	for _, s := range rec.Slices {
		fmt.Printf("  %5.1f .. %5.1f  %s\n", s.Start, s.End, names[s.ID])
	}
	var weighted float64
	for _, t := range set.Txns {
		tard := t.Tardiness()
		weighted += tard * t.Weight
		status := "on time"
		if tard > 0 {
			status = fmt.Sprintf("TARDY by %.1f", tard)
		}
		fmt.Printf("  %-24s deadline %4.0f  finished %5.1f  %s\n",
			names[t.ID], t.Deadline, t.FinishTime, status)
	}
	fmt.Printf("  average weighted tardiness: %.2f\n\n", weighted/float64(set.Len()))
}

func main() {
	fmt.Println("Section II-B: the alerts fragment depends on the stock scan but")
	fmt.Println("is due first. Ready hides that urgency; ASETS* boosts the chain.")
	fmt.Println()
	run(repro.NewReady())
	run(repro.NewASETSStar())
}
