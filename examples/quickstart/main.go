// Quickstart: generate a Table I workload, schedule it with ASETS*, and
// compare the resulting tardiness against EDF and SRPT — the paper's
// headline claim in under forty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A 1000-transaction workload at 70% utilization: Zipf(0.5) lengths on
	// [1, 50], Poisson arrivals, deadlines d = a + l + k*l with k ~ U[0, 3].
	cfg := repro.DefaultWorkload(0.7, 42)

	fmt.Println("policy   avg tardiness   deadline misses")
	fmt.Println("------   -------------   ---------------")
	for _, policy := range []repro.Scheduler{
		repro.NewEDF(),
		repro.NewSRPT(),
		repro.NewASETSStar(),
	} {
		// Each policy schedules an identical copy of the workload.
		set := repro.MustGenerate(cfg)
		summary := repro.MustRun(set, policy, repro.SimConfig{})
		fmt.Printf("%-8s %13.3f   %13.1f%%\n",
			policy.Name(), summary.AvgTardiness, 100*summary.MissRatio)
	}

	fmt.Println("\nASETS* adapts between EDF (light load) and SRPT (overload)")
	fmt.Println("without any tuning parameter — try changing the utilization.")
}
