// Livedash drives the online executor directly: a Table I workload replays
// over (scaled) wall-clock time under ASETS* while the main goroutine polls
// live statistics — the same machinery behind cmd/asetsweb, without the
// HTTP layer. Because the executor makes decisions at event time, the final
// numbers match the discrete-event simulator exactly.
//
//	go run ./examples/livedash
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/executor"
	"repro/internal/sim"
)

func main() {
	cfg := repro.DefaultWorkload(0.9, 11).WithWorkflows(5, 1).WithWeights()
	cfg.N = 600

	// Reference: the discrete-event simulator on the same workload.
	ref := sim.New(sim.Config{}).MustRun(repro.MustGenerate(cfg), repro.NewASETSStar())

	// Live: replay in real time at 1 simulated unit = 250µs (~3 seconds).
	set := repro.MustGenerate(cfg)
	ex := executor.New(repro.NewASETSStar(), set, executor.Options{
		TimeScale: 250 * time.Microsecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := ex.Run(ctx)
		done <- err
	}()

	fmt.Println("live ASETS* replay (polling every 300ms)")
	fmt.Println("sim-time   submitted  completed  misses  avg tardiness")
	ticker := time.NewTicker(300 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			if err != nil {
				fmt.Println("replay error:", err)
				return
			}
			st := ex.Stats()
			fmt.Printf("%8.1f   %9d  %9d  %6d  %13.3f\n",
				st.Now, st.Submitted, st.Completed, st.Misses, st.AvgTardiness())
			fmt.Printf("\nfinal live avg tardiness:      %.6f\n", st.AvgTardiness())
			fmt.Printf("discrete-event simulator says: %.6f  (identical schedules)\n", ref.AvgTardiness)
			return
		case <-ticker.C:
			st := ex.Stats()
			fmt.Printf("%8.1f   %9d  %9d  %6d  %13.3f\n",
				st.Now, st.Submitted, st.Completed, st.Misses, st.AvgTardiness())
		}
	}
}
