// Balance demonstrates the balance-aware ASETS* of Section III-D: an aging
// scheme that periodically runs T_old — the pending transaction with the
// highest weight-to-deadline ratio — trading a small increase in average
// weighted tardiness for a much better worst case (no starved heavyweight
// users).
//
//	go run ./examples/balance
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A saturated general-case workload: chain workflows plus weights.
	cfg := repro.DefaultWorkload(0.95, 77).WithWorkflows(5, 1).WithWeights()

	fmt.Println("balance-aware ASETS* at utilization 0.95 (weights 1-10, workflows)")
	fmt.Println()
	fmt.Println("activation rate   avg weighted   max weighted   p99 tardiness")
	fmt.Println("---------------   ------------   ------------   -------------")

	show := func(label string, s repro.Scheduler) *repro.Summary {
		set := repro.MustGenerate(cfg)
		sum := repro.MustRun(set, s, repro.SimConfig{})
		fmt.Printf("%-17s %12.2f   %12.2f   %13.2f\n",
			label, sum.AvgWeightedTardiness, sum.MaxWeightedTardiness, sum.TardinessP99)
		return sum
	}

	base := show("off (plain)", repro.NewASETSStar())
	var last *repro.Summary
	for _, rate := range []float64{0.002, 0.004, 0.006, 0.008, 0.01} {
		last = show(fmt.Sprintf("time %.3f", rate),
			repro.NewASETSStar(repro.WithTimeActivation(rate)))
	}

	fmt.Println()
	if base.MaxWeightedTardiness > 0 && last != nil {
		worst := 100 * (base.MaxWeightedTardiness - last.MaxWeightedTardiness) / base.MaxWeightedTardiness
		avg := 100 * (last.AvgWeightedTardiness - base.AvgWeightedTardiness) / base.AvgWeightedTardiness
		fmt.Printf("at the highest rate: worst case improved %.1f%%, average case cost %.1f%%\n", worst, avg)
	}
	fmt.Println("(the paper reports up to 27% worst-case gain for at most 5% average-case cost)")
}
