// Webfarm sweeps the load on a simulated dynamic-page farm and prints where
// the classic policies break down: EDF dominates at low utilization, SRPT
// takes over past the crossover, and ASETS* tracks the lower envelope of
// both without any tuning — the behaviour behind Figures 8-10 of the paper.
//
//	go run ./examples/webfarm
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("load sweep on a 1000-transaction page farm (avg of 3 seeds)")
	fmt.Println()
	fmt.Println("util     EDF        SRPT     ASETS*   best-static   winner")
	fmt.Println("----   --------   --------   ------   -----------   ------")

	var crossover float64 = -1
	prevWinner := ""
	for u := 0.1; u <= 1.001; u += 0.1 {
		edf := average(u, func() repro.Scheduler { return repro.NewEDF() })
		srpt := average(u, func() repro.Scheduler { return repro.NewSRPT() })
		asets := average(u, func() repro.Scheduler { return repro.NewASETSStar() })

		winner := "EDF"
		best := edf
		if srpt < best {
			winner, best = "SRPT", srpt
		}
		if winner == "SRPT" && prevWinner == "EDF" && crossover < 0 {
			crossover = u
		}
		prevWinner = winner

		marker := ""
		if asets <= best*1.02 {
			marker = "  <- ASETS* tracks the envelope"
		}
		fmt.Printf("%4.1f   %8.2f   %8.2f   %6.2f   %11.2f   %-5s%s\n",
			u, edf, srpt, asets, best, winner, marker)
	}
	if crossover > 0 {
		fmt.Printf("\nEDF/SRPT crossover near utilization %.1f — any static choice of\n", crossover)
		fmt.Println("policy is wrong on one side of it; ASETS* needs no choice at all.")
	}
}

// average runs three seeded workloads at utilization u under the policy and
// returns the mean average tardiness.
func average(u float64, mk func() repro.Scheduler) float64 {
	var sum float64
	seeds := []uint64{11, 22, 33}
	for _, seed := range seeds {
		set := repro.MustGenerate(repro.DefaultWorkload(u, seed))
		sum += repro.MustRun(set, mk(), repro.SimConfig{}).AvgTardiness
	}
	return sum / float64(len(seeds))
}
