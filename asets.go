// Package repro is a from-scratch Go reproduction of "Adaptive Scheduling of
// Web Transactions" (Guirguis, Sharaf, Chrysanthis, Labrinidis, Pruhs —
// ICDE 2009): the ASETS* family of adaptive transaction schedulers, the
// RTDBMS discrete-event simulator the paper evaluates on, the Table I
// workload generator, every baseline policy, and a harness that regenerates
// each figure of the evaluation.
//
// This root package is the public facade: it re-exports the stable surface
// of the internal packages so downstream users program against one import.
//
// # Quick start
//
//	set := repro.MustGenerate(repro.DefaultWorkload(0.8, 42))
//	summary := repro.MustRun(set, repro.NewASETSStar(), repro.SimConfig{})
//	fmt.Println(summary.AvgTardiness)
//
// See examples/ for complete programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-versus-measured record.
package repro

import (
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Model types.
type (
	// Transaction is one web transaction (arrival, deadline, length, weight,
	// dependency list) — Definition 1 of the paper.
	Transaction = txn.Transaction
	// ID identifies a transaction within a workload.
	ID = txn.ID
	// Set is a validated workload of transactions.
	Set = txn.Set
	// Workflow is a dependency-closed scheduling entity.
	Workflow = txn.Workflow
	// Representative is the virtual transaction of Definition 9.
	Representative = txn.Representative
)

// Scheduling types.
type (
	// Scheduler is the simulator-facing policy contract.
	Scheduler = sched.Scheduler
	// ASETSStar is the paper's scheduler; construct via NewASETSStar and
	// friends.
	ASETSStar = core.ASETSStar
	// ASETSOption customizes NewASETSStar.
	ASETSOption = core.Option
)

// Workload and result types.
type (
	// WorkloadConfig parameterizes the Table I generator.
	WorkloadConfig = workload.Config
	// WorkloadSpec is the unified workload constructor: plain, workflow,
	// and contended workloads all build through NewWorkloadSpec(...).Build.
	WorkloadSpec = workload.Spec
	// Keyspace parameterizes the data-contention model: Zipf-skewed
	// read/write sets over an abstract row space (docs/CONTENTION.md).
	Keyspace = contention.Keyspace
	// Summary aggregates one simulation run (Definitions 3-5 metrics).
	Summary = metrics.Summary
	// SimConfig configures a simulation engine (see NewSim).
	SimConfig = sim.Config
	// Sim is a reusable simulation engine bound to one SimConfig.
	Sim = sim.Sim
	// TraceRecorder records execution slices for validation.
	TraceRecorder = trace.Recorder
	// Figure is a rendered experiment result.
	Figure = report.Figure
	// ExperimentOptions tunes the experiment harness.
	ExperimentOptions = experiments.Options
	// ExperimentResult is a reproduced figure plus paper-versus-measured
	// observations.
	ExperimentResult = experiments.Result
)

// Session and closed-loop types (the introduction's interactive users).
type (
	// Session is one closed-loop user: pages of transactions plus think
	// times.
	Session = txn.Session
	// SessionConfig parameterizes the closed-loop generator.
	SessionConfig = workload.SessionConfig
	// ClosedLoopResult aggregates a closed-loop run (page latencies,
	// abandonment rate).
	ClosedLoopResult = sim.ClosedLoopResult
)

// NewSet validates and wraps transactions into a workload.
func NewSet(txns []*Transaction) (*Set, error) { return txn.NewSet(txns) }

// BuildWorkflows derives one workflow per root transaction (Section II-A).
func BuildWorkflows(s *Set) []*Workflow { return txn.BuildWorkflows(s) }

// CriticalPath returns, per transaction, the longest dependency chain's
// total service time ending at it (inclusive).
func CriticalPath(s *Set) ([]float64, error) { return txn.CriticalPath(s) }

// EarliestFinishTimes returns the structural lower bound on each
// transaction's finish time under any scheduler and server count.
func EarliestFinishTimes(s *Set) ([]float64, error) { return txn.EarliestFinishTimes(s) }

// DefaultSessions returns a closed-loop session workload shaped like
// Table I for the given user population and target utilization.
func DefaultSessions(users int, utilization float64, seed uint64) SessionConfig {
	return workload.DefaultSessions(users, utilization, seed)
}

// GenerateSessions builds the transaction set and sessions for a
// closed-loop run.
func GenerateSessions(cfg SessionConfig) (*Set, []Session, error) {
	return workload.GenerateSessions(cfg)
}

// RunClosedLoop simulates interactive sessions to completion under the
// policy; patience is the page-abandonment bound (0 disables it).
func RunClosedLoop(set *Set, sessions []Session, s Scheduler, patience float64) (*ClosedLoopResult, error) {
	return sim.New(sim.Config{Patience: patience}).RunClosedLoop(set, sessions, s)
}

// DefaultWorkload returns Table I's default configuration at the given
// target utilization.
func DefaultWorkload(utilization float64, seed uint64) WorkloadConfig {
	return workload.Default(utilization, seed)
}

// Generate produces a workload from a configuration.
func Generate(cfg WorkloadConfig) (*Set, error) { return workload.Generate(cfg) }

// MustGenerate is Generate but panics on error.
func MustGenerate(cfg WorkloadConfig) *Set { return workload.MustGenerate(cfg) }

// NewWorkloadSpec returns the Table-I default workload specification at the
// given target utilization; chain With* builders (WithWeights,
// WithWorkflows, WithContention, ...) and finish with Build.
func NewWorkloadSpec(utilization float64, seed uint64) WorkloadSpec {
	return workload.NewSpec(utilization, seed)
}

// NewConflictAware wraps any policy with conflict-aware dispatch: the
// wrapper defers queued transactions predicted to conflict with busy work,
// stealing the policy's first non-conflicting candidate instead (window 0
// selects the default probe depth; docs/CONTENTION.md).
func NewConflictAware(inner Scheduler, window int) Scheduler {
	return contention.NewDeferring(inner, window)
}

// NewSim returns a reusable simulation engine bound to cfg:
// NewSim(cfg).Run(set, scheduler) for open-loop runs,
// NewSim(cfg).RunClosedLoop(set, sessions, scheduler) for session replays.
func NewSim(cfg SimConfig) *Sim { return sim.New(cfg) }

// Run simulates the workload to completion under the scheduler and returns
// the performance summary.
func Run(set *Set, s Scheduler, cfg SimConfig) (*Summary, error) { return sim.New(cfg).Run(set, s) }

// MustRun is Run but panics on error.
func MustRun(set *Set, s Scheduler, cfg SimConfig) *Summary { return sim.New(cfg).MustRun(set, s) }

// NewASETSStar constructs the paper's scheduler: the general workflow-level
// weighted policy by default, reducing automatically to transaction-level
// EDF+SRPT on independent unweighted workloads.
func NewASETSStar(opts ...ASETSOption) *ASETSStar { return core.New(opts...) }

// NewReady constructs the Ready baseline of Section III-B (transaction-level
// ASETS* behind a Wait queue).
func NewReady() *ASETSStar { return core.NewReady() }

// WithTimeActivation enables balance-aware aging every 1/rate time units.
func WithTimeActivation(rate float64) ASETSOption { return core.WithTimeActivation(rate) }

// WithCountActivation enables balance-aware aging every 1/rate scheduling
// points.
func WithCountActivation(rate float64) ASETSOption { return core.WithCountActivation(rate) }

// WithSymmetricRule selects the Section III-B prose decision rule instead of
// the Fig. 7 pseudo-code (see DESIGN.md for the discrepancy).
func WithSymmetricRule() ASETSOption { return core.WithRule(core.RuleSymmetric) }

// Baseline policy constructors (Section II-C and related work).
var (
	// NewFCFS is First-Come-First-Served.
	NewFCFS = sched.NewFCFS
	// NewEDF is Earliest-Deadline-First.
	NewEDF = sched.NewEDF
	// NewSRPT is Shortest-Remaining-Processing-Time.
	NewSRPT = sched.NewSRPT
	// NewLS is Least-Slack.
	NewLS = sched.NewLS
	// NewHDF is Highest-Density-First.
	NewHDF = sched.NewHDF
	// NewHVF is Highest-Value-First.
	NewHVF = sched.NewHVF
	// NewMIX is the static deadline/value blend of the related work.
	NewMIX = sched.NewMIX
)

// Experiments exposes the per-figure experiment registry keyed by the IDs of
// DESIGN.md's experiment index ("fig8" ... "fig17", "tab1", "alpha", ...).
func Experiments() map[string]func(ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Registry
}

// ExperimentIDs lists the registered experiment IDs in sorted order.
func ExperimentIDs() []string { return experiments.IDs() }
