package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the minimal end-to-end flow: generate the paper's
// Table I workload, schedule it with ASETS*, and read the metrics.
func Example() {
	cfg := repro.DefaultWorkload(0.7, 42) // utilization 0.7, seed 42
	set := repro.MustGenerate(cfg)
	summary := repro.MustRun(set, repro.NewASETSStar(), repro.SimConfig{})
	fmt.Printf("transactions: %d\n", summary.N)
	fmt.Printf("all work done: %v\n", summary.BusyTime == summary.TotalWork)
	// Output:
	// transactions: 1000
	// all work done: true
}

// ExampleNewASETSStar_workflows schedules the paper's stock-dashboard
// conflict: a short, urgent alerts fragment depends on a long, cheap scan.
// Workflow-level ASETS* runs the producer first so the alert meets its
// deadline.
func ExampleNewASETSStar_workflows() {
	scan := &repro.Transaction{ID: 0, Arrival: 0, Deadline: 60, Length: 12, Weight: 1}
	alert := &repro.Transaction{ID: 1, Arrival: 0, Deadline: 20, Length: 1, Weight: 10,
		Deps: []repro.ID{0}}
	other := &repro.Transaction{ID: 2, Arrival: 0, Deadline: 25, Length: 9, Weight: 1}
	set, err := repro.NewSet([]*repro.Transaction{scan, alert, other})
	if err != nil {
		panic(err)
	}
	repro.MustRun(set, repro.NewASETSStar(), repro.SimConfig{})
	fmt.Printf("alert finished at %.0f (deadline %.0f)\n", alert.FinishTime, alert.Deadline)
	// Output:
	// alert finished at 13 (deadline 20)
}

// ExampleNewASETSStar_balanceAware shows the Section III-D trade-off knob:
// periodic activation of the highest weight-to-deadline transaction.
func ExampleNewASETSStar_balanceAware() {
	cfg := repro.DefaultWorkload(0.95, 7).WithWorkflows(5, 1).WithWeights()
	plain := repro.MustRun(repro.MustGenerate(cfg), repro.NewASETSStar(), repro.SimConfig{})
	balanced := repro.MustRun(repro.MustGenerate(cfg),
		repro.NewASETSStar(repro.WithTimeActivation(0.01)), repro.SimConfig{})
	fmt.Printf("worst case improved: %v\n",
		balanced.MaxWeightedTardiness < plain.MaxWeightedTardiness)
	// Output:
	// worst case improved: true
}

// ExampleRun_traceValidation records a schedule and mechanically checks the
// invariants every legal preemptive-resume schedule must satisfy.
func ExampleRun_traceValidation() {
	cfg := repro.DefaultWorkload(0.8, 3)
	cfg.N = 100
	set := repro.MustGenerate(cfg)
	rec := &repro.TraceRecorder{}
	if _, err := repro.Run(set, repro.NewSRPT(), repro.SimConfig{Recorder: rec}); err != nil {
		panic(err)
	}
	fmt.Println("schedule valid:", rec.Validate(set) == nil)
	// Output:
	// schedule valid: true
}
