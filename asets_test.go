package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeQuickstart runs the README quick-start end to end through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	set := repro.MustGenerate(repro.DefaultWorkload(0.8, 42))
	summary := repro.MustRun(set, repro.NewASETSStar(), repro.SimConfig{})
	if summary.N != 1000 {
		t.Fatalf("n = %d", summary.N)
	}
	if summary.AvgTardiness < 0 {
		t.Fatalf("tardiness = %v", summary.AvgTardiness)
	}
}

// TestFacadePoliciesRunnable constructs every exported policy and runs it on
// a small weighted workflow workload with trace validation.
func TestFacadePoliciesRunnable(t *testing.T) {
	cfg := repro.DefaultWorkload(0.7, 7).WithWorkflows(4, 2).WithWeights()
	cfg.N = 200
	policies := []repro.Scheduler{
		repro.NewFCFS(),
		repro.NewEDF(),
		repro.NewSRPT(),
		repro.NewLS(),
		repro.NewHDF(),
		repro.NewHVF(),
		repro.NewMIX(0.5),
		repro.NewASETSStar(),
		repro.NewReady(),
		repro.NewASETSStar(repro.WithTimeActivation(0.01)),
		repro.NewASETSStar(repro.WithCountActivation(0.05)),
		repro.NewASETSStar(repro.WithSymmetricRule()),
	}
	for _, p := range policies {
		set := repro.MustGenerate(cfg)
		rec := &repro.TraceRecorder{}
		sum, err := repro.Run(set, p, repro.SimConfig{Recorder: rec})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := rec.Validate(set); err != nil {
			t.Fatalf("%s: invalid schedule: %v", p.Name(), err)
		}
		if sum.BusyTime <= 0 {
			t.Fatalf("%s: no work performed", p.Name())
		}
	}
}

// TestFacadeWorkflows checks the workflow derivation surface.
func TestFacadeWorkflows(t *testing.T) {
	a := &repro.Transaction{ID: 0, Arrival: 0, Deadline: 10, Length: 2, Weight: 1}
	b := &repro.Transaction{ID: 1, Arrival: 0, Deadline: 5, Length: 1, Weight: 2, Deps: []repro.ID{0}}
	set, err := repro.NewSet([]*repro.Transaction{a, b})
	if err != nil {
		t.Fatal(err)
	}
	set.ResetAll() // populate Remaining from Length
	wfs := repro.BuildWorkflows(set)
	if len(wfs) != 1 || len(wfs[0].Members) != 2 {
		t.Fatalf("workflows = %v", wfs)
	}
	rep := wfs[0].Representative()
	if rep.Deadline != 5 || rep.Remaining != 1 || rep.Weight != 2 {
		t.Fatalf("rep = %+v", rep)
	}
}

// TestFacadeExperimentRegistry runs one registered experiment through the
// facade.
func TestFacadeExperimentRegistry(t *testing.T) {
	ids := repro.ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("registry too small: %v", ids)
	}
	run := repro.Experiments()["fig8"]
	res, err := run(repro.ExperimentOptions{N: 100, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure.ID != "fig8" {
		t.Fatalf("figure = %+v", res.Figure)
	}
}

// TestFacadeClosedLoop exercises the session API end to end through the
// facade.
func TestFacadeClosedLoop(t *testing.T) {
	cfg := repro.DefaultSessions(6, 0.8, 3)
	set, sessions, err := repro.GenerateSessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunClosedLoop(set, sessions, repro.NewASETSStar(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N != set.Len() {
		t.Fatalf("completed %d of %d", res.Summary.N, set.Len())
	}
	if res.AbandonRate < 0 || res.AbandonRate > 1 {
		t.Fatalf("abandon rate %v", res.AbandonRate)
	}
}

// TestFacadeStructuralBounds: earliest finish times lower-bound simulated
// finishes under every policy.
func TestFacadeStructuralBounds(t *testing.T) {
	cfg := repro.DefaultWorkload(0.9, 17).WithWorkflows(5, 1)
	cfg.N = 300
	set := repro.MustGenerate(cfg)
	eft, err := repro.EarliestFinishTimes(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []repro.Scheduler{repro.NewEDF(), repro.NewSRPT(), repro.NewASETSStar()} {
		repro.MustRun(set, p, repro.SimConfig{})
		for _, tx := range set.Txns {
			if tx.FinishTime < eft[tx.ID]-1e-6 {
				t.Fatalf("%s: T%d finished at %v below structural bound %v",
					p.Name(), tx.ID, tx.FinishTime, eft[tx.ID])
			}
		}
	}
	cp, err := repro.CriticalPath(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cp {
		if cp[i] < set.ByID(repro.ID(i)).Length {
			t.Fatalf("critical path %v below own length", cp[i])
		}
	}
}

// TestFacadeMultiServer runs a replicated-backend simulation through the
// public surface.
func TestFacadeMultiServer(t *testing.T) {
	cfg := repro.DefaultWorkload(1.8, 23)
	cfg.N = 300
	set := repro.MustGenerate(cfg)
	rec := &repro.TraceRecorder{}
	sum, err := repro.Run(set, repro.NewASETSStar(), repro.SimConfig{Servers: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.ValidateN(set, 2); err != nil {
		t.Fatal(err)
	}
	if sum.BusyTime <= sum.Makespan {
		t.Fatal("two busy servers should accumulate busy time beyond the makespan")
	}
}

// TestDeterministicReplay: the same config and seed produce bit-identical
// summaries across runs — the property every experiment depends on.
func TestDeterministicReplay(t *testing.T) {
	cfg := repro.DefaultWorkload(0.9, 1234).WithWorkflows(5, 1).WithWeights()
	cfg.N = 400
	run := func() *repro.Summary {
		return repro.MustRun(repro.MustGenerate(cfg), repro.NewASETSStar(), repro.SimConfig{})
	}
	a, b := run(), run()
	if a.AvgWeightedTardiness != b.AvgWeightedTardiness || a.Makespan != b.Makespan {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
