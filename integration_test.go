package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/svgplot"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// TestFullPipeline drives the whole system end to end the way a user would:
// generate a workload, persist it, reload it, simulate it under every major
// policy with trace validation, post-process the schedules, run a small
// experiment, and render its figure as table, CSV and SVG.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist.
	cfg := repro.DefaultWorkload(0.85, 2024).WithWorkflows(5, 2).WithWeights()
	cfg.N = 250
	set := repro.MustGenerate(cfg)
	path := filepath.Join(dir, "workload.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteJSON(f, set, &cfg); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and check equivalence.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, loadedCfg, err := workload.ReadJSON(g)
	g.Close()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != set.Len() || loadedCfg.Seed != cfg.Seed {
		t.Fatalf("reload mismatch: %d txns, cfg %+v", loaded.Len(), loadedCfg)
	}

	// 3. Simulate every policy on the loaded workload, validating traces.
	policies := []repro.Scheduler{
		repro.NewFCFS(), repro.NewEDF(), repro.NewSRPT(), repro.NewLS(),
		repro.NewHDF(), repro.NewHVF(), repro.NewMIX(0.5),
		repro.NewASETSStar(), repro.NewReady(),
	}
	var asetsTard float64
	for _, p := range policies {
		rec := &trace.Recorder{}
		sum, err := repro.Run(loaded, p, repro.SimConfig{Recorder: rec})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := rec.Validate(loaded); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if p.Name() == "ASETS*" {
			asetsTard = sum.AvgWeightedTardiness

			// 4. Post-process the ASETS* schedule.
			classes := analysis.ByDependency(loaded)
			if len(classes) != 2 {
				t.Fatalf("class breakdown: %v", classes)
			}
			dep, q, svc := analysis.SummarizeWaits(analysis.Waits(loaded, rec))
			if svc <= 0 || dep < 0 || q < 0 {
				t.Fatalf("wait decomposition: %v %v %v", dep, q, svc)
			}
			if peak, _ := analysis.PeakBacklog(analysis.BacklogSeries(loaded, rec, 100)); peak <= 0 {
				t.Fatal("no backlog observed at utilization 0.85")
			}
		}
	}
	if asetsTard <= 0 {
		t.Fatal("ASETS* reported zero weighted tardiness at load 0.85 — implausible")
	}

	// 5. Multi-server run on the same workload.
	recN := &trace.Recorder{}
	if _, err := sim.New(sim.Config{Servers: 3, Recorder: recN}).Run(loaded, repro.NewASETSStar()); err != nil {
		t.Fatal(err)
	}
	if err := recN.ValidateN(loaded, 3); err != nil {
		t.Fatal(err)
	}

	// 6. Run one registered experiment and render all output formats.
	res, err := experiments.Registry["fig10"](repro.ExperimentOptions{N: 120, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl := res.Figure.Table(); !strings.Contains(tbl, "fig10") {
		t.Fatal("table render missing id")
	}
	if csv := res.Figure.CSV(); !strings.Contains(csv, "utilization") {
		t.Fatal("csv render missing header")
	}
	var svg bytes.Buffer
	if err := svgplot.Render(&svg, res.Figure, svgplot.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("svg render broken")
	}

	// 7. Closed-loop sessions through the same policies.
	scfg := workload.DefaultSessions(10, 0.85, 7)
	sset, sessions, err := workload.GenerateSessions(scfg)
	if err != nil {
		t.Fatal(err)
	}
	clRes, err := sim.New(sim.Config{}).RunClosedLoop(sset, sessions, repro.NewASETSStar())
	if err != nil {
		t.Fatal(err)
	}
	if clRes.Summary.N != sset.Len() {
		t.Fatalf("closed loop completed %d of %d", clRes.Summary.N, sset.Len())
	}

	// 8. DOT export of a small workload parses as text.
	small := repro.MustGenerate(repro.DefaultWorkload(0.5, 3).WithWorkflows(3, 1))
	var dot bytes.Buffer
	if err := txn.WriteDOT(&dot, small); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatal("dot export broken")
	}
}
