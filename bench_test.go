// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section IV). Each benchmark runs the corresponding experiment end to end
// — workload generation, simulation of every policy over the paper's
// utilization or activation-rate sweep, five seeded runs per cell — and
// reports the headline observation via custom benchmark metrics so the
// bench log doubles as a reproduction record:
//
//	go test -bench=. -benchmem
//
// Custom metrics emitted per figure (units are figure-specific):
//
//	xover-util     EDF/SRPT crossover utilization
//	gain-pct       max ASETS* improvement over the best competitor
//	cost-pct       balance-aware average-case cost
//
// The simulation work is deterministic, so ns/op measures the real cost of
// regenerating the figure.
package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// benchOpts are smaller than the paper's full scale (1000 transactions,
// five seeds) so the whole suite stays laptop-friendly; cmd/asetsbench runs
// the full-scale version.
func benchOpts() repro.ExperimentOptions {
	return repro.ExperimentOptions{
		N:     500,
		Seeds: []uint64{101, 202, 303},
	}
}

// runFigure executes a registered experiment b.N times and attaches the
// numeric observations as custom metrics.
func runFigure(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportObservations(b, last)
}

// reportObservations parses the experiment's observation strings for
// percentages and crossover values and republishes them as benchmark
// metrics.
func reportObservations(b *testing.B, res *experiments.Result) {
	b.Helper()
	for _, obs := range res.Observations {
		switch {
		case strings.Contains(obs, "crossover at utilization"):
			var v float64
			if _, err := fmtSscanSuffix(obs, "crossover at utilization", &v); err == nil {
				b.ReportMetric(v, "xover-util")
			}
		case strings.Contains(obs, "max ASETS* gain"):
			if v, ok := firstPercent(obs); ok {
				b.ReportMetric(v, "gain-pct")
			}
		case strings.Contains(obs, "max worst-case improvement"):
			if v, ok := firstPercent(obs); ok {
				b.ReportMetric(v, "gain-pct")
			}
		case strings.Contains(obs, "max average-case cost"):
			if v, ok := firstPercent(obs); ok {
				b.ReportMetric(v, "cost-pct")
			}
		}
	}
}

// fmtSscanSuffix scans one float immediately after marker in s.
func fmtSscanSuffix(s, marker string, v *float64) (int, error) {
	idx := strings.Index(s, marker)
	rest := strings.TrimSpace(s[idx+len(marker):])
	return sscanFloat(rest, v)
}

func sscanFloat(s string, v *float64) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, errNoFloat
	}
	var x float64
	var neg bool
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
	}
	frac := -1.0
	for ; i < end; i++ {
		if s[i] == '.' {
			frac = 0.1
			continue
		}
		d := float64(s[i] - '0')
		if frac < 0 {
			x = x*10 + d
		} else {
			x += d * frac
			frac /= 10
		}
	}
	if neg {
		x = -x
	}
	*v = x
	return 1, nil
}

var errNoFloat = &parseError{"no float"}

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

// firstPercent extracts the first "<float>%" in s.
func firstPercent(s string) (float64, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '%' {
			j := i
			for j > 0 && (s[j-1] == '.' || s[j-1] == '-' || (s[j-1] >= '0' && s[j-1] <= '9')) {
				j--
			}
			if j < i {
				var v float64
				if _, err := sscanFloat(s[j:i], &v); err == nil {
					return v, true
				}
			}
		}
	}
	return 0, false
}

// --- One benchmark per paper table/figure (DESIGN.md experiment index). ---

// BenchmarkFig08TransactionLevelLowUtil regenerates Figure 8: average
// tardiness of FCFS/LS/EDF/SRPT/ASETS* at utilization 0.1-0.5.
func BenchmarkFig08TransactionLevelLowUtil(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig09TransactionLevelHighUtil regenerates Figure 9 (0.6-1.0).
func BenchmarkFig09TransactionLevelHighUtil(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10NormalizedKmax3 regenerates Figure 10: ASETS* tardiness
// normalized to EDF and SRPT at kmax=3.
func BenchmarkFig10NormalizedKmax3(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11NormalizedKmax1 regenerates Figure 11 (kmax=1).
func BenchmarkFig11NormalizedKmax1(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkFig12NormalizedKmax2 regenerates Figure 12 (kmax=2).
func BenchmarkFig12NormalizedKmax2(b *testing.B) { runFigure(b, "fig12") }

// BenchmarkFig13NormalizedKmax4 regenerates Figure 13 (kmax=4).
func BenchmarkFig13NormalizedKmax4(b *testing.B) { runFigure(b, "fig13") }

// BenchmarkFig14WorkflowLevel regenerates Figure 14: ASETS* versus Ready on
// chain workflows (max length 5, membership 1).
func BenchmarkFig14WorkflowLevel(b *testing.B) { runFigure(b, "fig14") }

// BenchmarkFig15GeneralCase regenerates Figure 15: average weighted
// tardiness of ASETS* versus EDF and HDF with workflows and weights.
func BenchmarkFig15GeneralCase(b *testing.B) { runFigure(b, "fig15") }

// BenchmarkFig16BalanceWorstCase regenerates Figure 16: maximum weighted
// tardiness across time-based activation rates.
func BenchmarkFig16BalanceWorstCase(b *testing.B) { runFigure(b, "fig16") }

// BenchmarkFig17BalanceAvgCase regenerates Figure 17: the average-case cost
// of the same sweep.
func BenchmarkFig17BalanceAvgCase(b *testing.B) { runFigure(b, "fig17") }

// BenchmarkTable1WorkloadGeneration regenerates the Table I compliance
// check: realized utilization versus specification.
func BenchmarkTable1WorkloadGeneration(b *testing.B) { runFigure(b, "tab1") }

// BenchmarkAlphaSweepExtension regenerates the experiment the paper
// describes without plots: crossover location versus Zipf skew.
func BenchmarkAlphaSweepExtension(b *testing.B) { runFigure(b, "alpha") }

// BenchmarkAblationDecisionRule compares the Fig. 7 rule against the
// Section III-B symmetric reading.
func BenchmarkAblationDecisionRule(b *testing.B) { runFigure(b, "abl-rule") }

// BenchmarkAblationCountBasedBalance sweeps the count-based activation
// variant of Section III-D.
func BenchmarkAblationCountBasedBalance(b *testing.B) { runFigure(b, "abl-count") }

// BenchmarkWorkflowLengthSweep regenerates the Section IV-D robustness
// sweep over maximum workflow length (3..10).
func BenchmarkWorkflowLengthSweep(b *testing.B) { runFigure(b, "wf-len") }

// BenchmarkWorkflowMembershipSweep regenerates the Section IV-D sweep over
// maximum workflow membership (1..10).
func BenchmarkWorkflowMembershipSweep(b *testing.B) { runFigure(b, "wf-mem") }

// BenchmarkDependentBreakdown runs the extension experiment splitting
// tardiness between dependent and independent transactions.
func BenchmarkDependentBreakdown(b *testing.B) { runFigure(b, "dep-split") }

// BenchmarkAblationRepScope compares the two readings of Definition 9's
// representative transaction (all members vs excluding the head).
func BenchmarkAblationRepScope(b *testing.B) { runFigure(b, "abl-rep") }

// BenchmarkFig15Extended widens Figure 15 with the related-work baselines
// HVF and MIX discussed in Section V.
func BenchmarkFig15Extended(b *testing.B) { runFigure(b, "fig15x") }

// BenchmarkDominoEffect measures the Section III-A.1 motivation: the share
// of the backlog that is already past its deadline under EDF, SRPT and
// ASETS* across the load sweep.
func BenchmarkDominoEffect(b *testing.B) { runFigure(b, "domino") }

// BenchmarkMultiServerExtension runs the replicated-backend extension:
// EDF, SRPT and ASETS* over 1-8 identical servers at per-server load 0.9.
func BenchmarkMultiServerExtension(b *testing.B) { runFigure(b, "mserver") }

// BenchmarkSessionsExtension runs the closed-loop session experiment:
// page abandonment rate under interactive users (the introduction's
// lost-revenue scenario).
func BenchmarkSessionsExtension(b *testing.B) { runFigure(b, "sessions") }

// BenchmarkCacheExtension sweeps the fragment-cache hit ratio (Section
// II-A's materialization note) and reports crossover movement.
func BenchmarkCacheExtension(b *testing.B) { runFigure(b, "cache") }

// BenchmarkStructuralFloor decomposes fig14's tardiness into the
// policy-independent structural floor and the scheduling-addressable rest.
func BenchmarkStructuralFloor(b *testing.B) { runFigure(b, "structural") }

// BenchmarkHitRatioObjectives contrasts hit-ratio hybrids (AED, MIX) with
// the tardiness objective across the load sweep.
func BenchmarkHitRatioObjectives(b *testing.B) { runFigure(b, "hitratio") }

// BenchmarkBurstExtension compares Poisson against ON/OFF bursty arrivals —
// the introduction's premise that web traffic is bursty.
func BenchmarkBurstExtension(b *testing.B) { runFigure(b, "burst") }

// --- Micro-benchmarks: scheduler hot paths. ---

// benchScheduler measures one full simulation of a 1000-transaction
// workload under the given policy.
func benchScheduler(b *testing.B, mk func() repro.Scheduler, cfg repro.WorkloadConfig) {
	b.Helper()
	set := repro.MustGenerate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repro.MustRun(set, mk(), repro.SimConfig{})
	}
}

// BenchmarkSchedulerEDF measures EDF on the default workload at U=0.9.
func BenchmarkSchedulerEDF(b *testing.B) {
	benchScheduler(b, func() repro.Scheduler { return repro.NewEDF() }, repro.DefaultWorkload(0.9, 7))
}

// BenchmarkSchedulerSRPT measures SRPT on the default workload at U=0.9.
func BenchmarkSchedulerSRPT(b *testing.B) {
	benchScheduler(b, func() repro.Scheduler { return repro.NewSRPT() }, repro.DefaultWorkload(0.9, 7))
}

// BenchmarkSchedulerASETSStarTransactionLevel measures ASETS* on an
// independent workload (transaction level).
func BenchmarkSchedulerASETSStarTransactionLevel(b *testing.B) {
	benchScheduler(b, func() repro.Scheduler { return repro.NewASETSStar() }, repro.DefaultWorkload(0.9, 7))
}

// BenchmarkSchedulerASETSStarWorkflowLevel measures ASETS* with chain
// workflows and weights (the general case).
func BenchmarkSchedulerASETSStarWorkflowLevel(b *testing.B) {
	benchScheduler(b, func() repro.Scheduler { return repro.NewASETSStar() },
		repro.DefaultWorkload(0.9, 7).WithWorkflows(5, 1).WithWeights())
}

// BenchmarkSchedulerReadyWorkflowLevel measures the Ready baseline on the
// same workload for comparison.
func BenchmarkSchedulerReadyWorkflowLevel(b *testing.B) {
	benchScheduler(b, func() repro.Scheduler { return repro.NewReady() },
		repro.DefaultWorkload(0.9, 7).WithWorkflows(5, 1).WithWeights())
}

// BenchmarkBackendHeapVsTreap compares the two ready-queue substrates (the
// indexed binary heap versus the paper's balanced-BST reading) running the
// same EDF policy over the same workload; schedules are identical, only the
// constants differ.
func BenchmarkBackendHeapVsTreap(b *testing.B) {
	cfg := repro.DefaultWorkload(0.9, 7)
	less := func(x, y *repro.Transaction) bool {
		if x.Deadline != y.Deadline {
			return x.Deadline < y.Deadline
		}
		return x.ID < y.ID
	}
	for _, bk := range []struct {
		name    string
		backend sched.Backend
	}{{"heap", sched.BackendHeap}, {"treap", sched.BackendTreap}} {
		b.Run(bk.name, func(b *testing.B) {
			set := repro.MustGenerate(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				repro.MustRun(set, sched.NewPriorityPolicyWithBackend("EDF", less, bk.backend), repro.SimConfig{})
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures the Table I generator itself.
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := repro.DefaultWorkload(0.9, 7).WithWorkflows(5, 3).WithWeights()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		repro.MustGenerate(cfg)
	}
}
